"""Randomized uniform scalar quantization of the rotated query (Sec. 3.3.1).

At query time RaBitQ inversely rotates the normalized query ``q`` into
``q' = P^-1 q`` and quantizes each coordinate to a ``B_q``-bit unsigned
integer.  To keep the computation unbiased the rounding is randomized: a
value ``v = v_l + m * delta + t`` is rounded up with probability ``t /
delta`` and down otherwise (Eq. 18), which makes the expected quantized
value equal to the true value.

Two granularities are provided:

* :func:`quantize_query_vector` — one query at a time (Algorithm 2 as
  written in the paper),
* :func:`quantize_query_matrix` — a whole matrix of rotated queries at once,
  for the batch search engine.  It consumes the randomized-rounding stream
  in exactly the same order as row-by-row calls of
  :func:`quantize_query_vector` (degenerate constant rows draw nothing,
  mirroring the scalar path), so batch and sequential quantization produce
  bit-identical codes from the same generator state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bitops import bitplanes_from_uint, bitplanes_from_uint_batch
from repro.core.lut import build_query_luts, build_query_luts_batch
from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.substrates.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class QuantizedQueryVector:
    """A scalar-quantized rotated query vector.

    Attributes
    ----------
    codes:
        Unsigned integer representation ``q̄_u`` of each coordinate,
        shape ``(code_length,)``.
    lower:
        The range minimum ``v_l`` used by the quantizer.
    delta:
        The step size ``Δ = (v_r - v_l) / (2^{B_q} - 1)``.
    bits:
        Bit width ``B_q``.
    sum_codes:
        Pre-computed ``sum_i q̄_u[i]`` (shared across all data vectors in
        Eq. 20).
    bitplanes:
        Packed bit-planes of ``codes`` for the popcount kernel, shape
        ``(bits, n_words)``.
    """

    codes: np.ndarray
    lower: float
    delta: float
    bits: int
    sum_codes: int
    bitplanes: np.ndarray | None

    @property
    def code_length(self) -> int:
        """Number of quantized coordinates."""
        return int(self.codes.shape[0])

    def dequantize(self) -> np.ndarray:
        """Reconstruct ``q̄ = Δ * q̄_u + v_l``."""
        return self.delta * self.codes.astype(np.float64) + self.lower

    def build_luts(self) -> np.ndarray:
        """Fast-scan look-up tables of the quantized coordinates.

        Shape ``(code_length / 4, 16)`` — see
        :func:`repro.core.lut.build_query_luts`.  Requires ``code_length``
        to be a multiple of 4 (always true for padded RaBitQ codes).
        """
        return build_query_luts(self.codes)


def quantize_query_vector(
    rotated_query: np.ndarray,
    bits: int,
    *,
    randomized: bool = True,
    rng: RngLike = None,
    with_bitplanes: bool = True,
) -> QuantizedQueryVector:
    """Quantize the rotated query ``q'`` into ``B_q``-bit unsigned integers.

    Parameters
    ----------
    rotated_query:
        The vector ``q' = P^-1 q``, shape ``(code_length,)``.
    bits:
        Bit width ``B_q`` (1 to 16).
    randomized:
        Use randomized rounding (the paper's default, required for the
        unbiasedness of the computation).  When ``False`` the conventional
        round-to-nearest rule is applied (exposed for the ablation study).
    rng:
        Seed or generator for the randomized rounding.
    with_bitplanes:
        Also pack the bit-planes for the popcount kernel (the default).
        Callers on the GEMM/arena path never touch them; skipping the
        packing there removes the most expensive step of query preparation
        without consuming any randomness (``bitplanes`` is then ``None``).
    """
    query = np.asarray(rotated_query, dtype=np.float64).reshape(-1)
    if query.size == 0:
        raise DimensionMismatchError("rotated_query must be non-empty")
    if not 1 <= int(bits) <= 16:
        raise InvalidParameterError("bits must lie in [1, 16]")
    bits = int(bits)

    lower = float(query.min())
    upper = float(query.max())
    levels = (1 << bits) - 1
    value_range = upper - lower
    if value_range <= 0.0:
        # Degenerate constant query: every coordinate quantizes to level 0.
        codes = np.zeros(query.shape[0], dtype=np.uint64)
        delta = 1.0
    else:
        delta = value_range / levels
        scaled = (query - lower) / delta
        if randomized:
            generator = ensure_rng(rng)
            offsets = generator.random(query.shape[0])
            codes = np.floor(scaled + offsets)
        else:
            codes = np.round(scaled)
        codes = np.clip(codes, 0, levels).astype(np.uint64)

    planes = bitplanes_from_uint(codes, bits) if with_bitplanes else None
    return QuantizedQueryVector(
        codes=codes,
        lower=lower,
        delta=float(delta),
        bits=bits,
        sum_codes=int(codes.sum()),
        bitplanes=planes,
    )


@dataclass(frozen=True)
class QuantizedQueryMatrix:
    """A batch of scalar-quantized rotated queries (one per row).

    Attributes
    ----------
    codes:
        Unsigned integer representations, shape ``(n_queries, code_length)``.
    lower:
        Per-query range minima ``v_l``, shape ``(n_queries,)``.
    delta:
        Per-query step sizes ``Δ``, shape ``(n_queries,)``.
    bits:
        Bit width ``B_q`` (shared by all queries).
    sum_codes:
        Per-query code sums, shape ``(n_queries,)``.
    bitplanes:
        Packed bit-planes, shape ``(n_queries, bits, n_words)``.
    """

    codes: np.ndarray
    lower: np.ndarray
    delta: np.ndarray
    bits: int
    sum_codes: np.ndarray
    bitplanes: np.ndarray | None

    @property
    def n_queries(self) -> int:
        """Number of quantized queries in the batch."""
        return int(self.codes.shape[0])

    @property
    def code_length(self) -> int:
        """Number of quantized coordinates per query."""
        return int(self.codes.shape[1])

    def row(self, i: int) -> QuantizedQueryVector:
        """The ``i``-th query as a single :class:`QuantizedQueryVector`."""
        return QuantizedQueryVector(
            codes=self.codes[i],
            lower=float(self.lower[i]),
            delta=float(self.delta[i]),
            bits=self.bits,
            sum_codes=int(self.sum_codes[i]),
            bitplanes=None if self.bitplanes is None else self.bitplanes[i],
        )

    def dequantize(self) -> np.ndarray:
        """Reconstruct ``q̄ = Δ * q̄_u + v_l`` row-wise."""
        return (
            self.delta[:, None] * self.codes.astype(np.float64) + self.lower[:, None]
        )

    def build_luts(self) -> np.ndarray:
        """Stacked fast-scan look-up tables, one per query.

        Shape ``(n_queries, code_length / 4, 16)``; slice ``[i]`` equals
        ``self.row(i).build_luts()`` bit for bit (the entries are exact
        integers) — see :func:`repro.core.lut.build_query_luts_batch`.
        """
        return build_query_luts_batch(self.codes)


def quantize_query_matrix(
    rotated_queries: np.ndarray,
    bits: int,
    *,
    randomized: bool = True,
    rng: RngLike = None,
    with_bitplanes: bool = True,
) -> QuantizedQueryMatrix:
    """Quantize a matrix of rotated queries into ``B_q``-bit integers.

    Exactly equivalent to calling :func:`quantize_query_vector` on each row
    with the same generator: per-row minima/maxima, step sizes and rounding
    offsets match the scalar path bit for bit, and degenerate (constant) rows
    consume no randomness, just as the scalar path skips its draw.

    Parameters
    ----------
    rotated_queries:
        The rotated queries ``q' = P^-1 q``, shape ``(n_queries,
        code_length)``.  An empty batch (0 rows) is allowed.
    bits / randomized / rng / with_bitplanes:
        As in :func:`quantize_query_vector`.
    """
    mat = np.asarray(rotated_queries, dtype=np.float64)
    if mat.ndim != 2:
        raise DimensionMismatchError("rotated_queries must be a 2-D matrix")
    n_queries, code_length = mat.shape
    if n_queries and code_length == 0:
        raise DimensionMismatchError("rotated_queries must be non-empty")
    if not 1 <= int(bits) <= 16:
        raise InvalidParameterError("bits must lie in [1, 16]")
    bits = int(bits)
    levels = (1 << bits) - 1

    if n_queries == 0:
        empty_codes = np.zeros((0, code_length), dtype=np.uint64)
        return QuantizedQueryMatrix(
            codes=empty_codes,
            lower=np.zeros(0, dtype=np.float64),
            delta=np.ones(0, dtype=np.float64),
            bits=bits,
            sum_codes=np.zeros(0, dtype=np.int64),
            bitplanes=(
                bitplanes_from_uint_batch(empty_codes, bits)
                if with_bitplanes
                else None
            ),
        )

    lower = mat.min(axis=1)
    upper = mat.max(axis=1)
    value_range = upper - lower
    # Mirror the scalar branch condition (``if value_range <= 0.0``) exactly:
    # a NaN range must land in the live branch (and consume a rounding draw)
    # just as it does in quantize_query_vector, or the RNG streams of the two
    # paths would desynchronize for every later row.
    live = ~(value_range <= 0.0)

    codes = np.zeros((n_queries, code_length), dtype=np.float64)
    delta = np.ones(n_queries, dtype=np.float64)
    if live.any():
        delta[live] = value_range[live] / levels
        scaled = (mat[live] - lower[live, None]) / delta[live, None]
        if randomized:
            generator = ensure_rng(rng)
            offsets = generator.random((int(live.sum()), code_length))
            codes[live] = np.floor(scaled + offsets)
        else:
            codes[live] = np.round(scaled)
        codes[live] = np.clip(codes[live], 0, levels)
    codes = codes.astype(np.uint64)

    return QuantizedQueryMatrix(
        codes=codes,
        lower=lower,
        delta=delta,
        bits=bits,
        sum_codes=codes.sum(axis=1, dtype=np.int64),
        bitplanes=(
            bitplanes_from_uint_batch(codes, bits) if with_bitplanes else None
        ),
    )


def dequantization_error(
    rotated_query: np.ndarray, quantized: QuantizedQueryVector
) -> float:
    """Maximum absolute per-coordinate error of a quantized query.

    Used in tests and in the B_q verification experiment; the randomized
    rounding guarantees this never exceeds ``Δ``.
    """
    query = np.asarray(rotated_query, dtype=np.float64).reshape(-1)
    if query.shape[0] != quantized.code_length:
        raise DimensionMismatchError("query and quantized query lengths differ")
    return float(np.max(np.abs(query - quantized.dequantize())))


__all__ = [
    "QuantizedQueryVector",
    "QuantizedQueryMatrix",
    "quantize_query_vector",
    "quantize_query_matrix",
    "dequantization_error",
]
