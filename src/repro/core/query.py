"""Randomized uniform scalar quantization of the rotated query (Sec. 3.3.1).

At query time RaBitQ inversely rotates the normalized query ``q`` into
``q' = P^-1 q`` and quantizes each coordinate to a ``B_q``-bit unsigned
integer.  To keep the computation unbiased the rounding is randomized: a
value ``v = v_l + m * delta + t`` is rounded up with probability ``t /
delta`` and down otherwise (Eq. 18), which makes the expected quantized
value equal to the true value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bitops import bitplanes_from_uint
from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.substrates.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class QuantizedQueryVector:
    """A scalar-quantized rotated query vector.

    Attributes
    ----------
    codes:
        Unsigned integer representation ``q̄_u`` of each coordinate,
        shape ``(code_length,)``.
    lower:
        The range minimum ``v_l`` used by the quantizer.
    delta:
        The step size ``Δ = (v_r - v_l) / (2^{B_q} - 1)``.
    bits:
        Bit width ``B_q``.
    sum_codes:
        Pre-computed ``sum_i q̄_u[i]`` (shared across all data vectors in
        Eq. 20).
    bitplanes:
        Packed bit-planes of ``codes`` for the popcount kernel, shape
        ``(bits, n_words)``.
    """

    codes: np.ndarray
    lower: float
    delta: float
    bits: int
    sum_codes: int
    bitplanes: np.ndarray

    @property
    def code_length(self) -> int:
        """Number of quantized coordinates."""
        return int(self.codes.shape[0])

    def dequantize(self) -> np.ndarray:
        """Reconstruct ``q̄ = Δ * q̄_u + v_l``."""
        return self.delta * self.codes.astype(np.float64) + self.lower


def quantize_query_vector(
    rotated_query: np.ndarray,
    bits: int,
    *,
    randomized: bool = True,
    rng: RngLike = None,
) -> QuantizedQueryVector:
    """Quantize the rotated query ``q'`` into ``B_q``-bit unsigned integers.

    Parameters
    ----------
    rotated_query:
        The vector ``q' = P^-1 q``, shape ``(code_length,)``.
    bits:
        Bit width ``B_q`` (1 to 16).
    randomized:
        Use randomized rounding (the paper's default, required for the
        unbiasedness of the computation).  When ``False`` the conventional
        round-to-nearest rule is applied (exposed for the ablation study).
    rng:
        Seed or generator for the randomized rounding.
    """
    query = np.asarray(rotated_query, dtype=np.float64).reshape(-1)
    if query.size == 0:
        raise DimensionMismatchError("rotated_query must be non-empty")
    if not 1 <= int(bits) <= 16:
        raise InvalidParameterError("bits must lie in [1, 16]")
    bits = int(bits)

    lower = float(query.min())
    upper = float(query.max())
    levels = (1 << bits) - 1
    value_range = upper - lower
    if value_range <= 0.0:
        # Degenerate constant query: every coordinate quantizes to level 0.
        codes = np.zeros(query.shape[0], dtype=np.uint64)
        delta = 1.0
    else:
        delta = value_range / levels
        scaled = (query - lower) / delta
        if randomized:
            generator = ensure_rng(rng)
            offsets = generator.random(query.shape[0])
            codes = np.floor(scaled + offsets)
        else:
            codes = np.round(scaled)
        codes = np.clip(codes, 0, levels).astype(np.uint64)

    planes = bitplanes_from_uint(codes, bits)
    return QuantizedQueryVector(
        codes=codes,
        lower=lower,
        delta=float(delta),
        bits=bits,
        sum_codes=int(codes.sum()),
        bitplanes=planes,
    )


def dequantization_error(
    rotated_query: np.ndarray, quantized: QuantizedQueryVector
) -> float:
    """Maximum absolute per-coordinate error of a quantized query.

    Used in tests and in the B_q verification experiment; the randomized
    rounding guarantees this never exceeds ``Δ``.
    """
    query = np.asarray(rotated_query, dtype=np.float64).reshape(-1)
    if query.shape[0] != quantized.code_length:
        raise DimensionMismatchError("query and quantized query lengths differ")
    return float(np.max(np.abs(query - quantized.dequantize())))


__all__ = [
    "QuantizedQueryVector",
    "quantize_query_vector",
    "dequantization_error",
]
