"""4-bit look-up-table accumulation (the batch computation path of Sec. 3.3.2).

The paper's batch path splits each ``D``-bit code into ``D/4`` sub-segments of
4 bits and pre-computes, per sub-segment, a 16-entry table holding the inner
product between the quantized query's 4 coordinates in that sub-segment and
every possible 4-bit pattern.  ``<x_b, q_u>`` is then the sum of ``D/4`` table
lookups.  On real hardware the tables live in SIMD registers and the lookups
use shuffle instructions (the PQ fast-scan layout); here the same structure is
emulated with vectorized NumPy gathers, which preserves the algorithm and the
operation counts while running at NumPy speed.

Exactness contract: the query codes are small unsigned integers, so every LUT
entry (a sum of at most 4 of them) and every accumulated total (a sum of at
most ``code_length/4`` entries) is an integer far below 2**53.  Float64
accumulation is therefore *exact*, and the ``lut_accumulate`` path produces
bit-identical integer dots to the packed popcount / GEMM kernels.  The
``uint8`` variants trade that exactness for the reduced-precision table
layout real fast-scan uses; their error is bounded by
``n_segments * scale / 2``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionMismatchError, InvalidParameterError

#: Number of bits per look-up-table sub-segment (matches the AVX2 fast-scan layout).
SEGMENT_BITS = 4

#: Number of entries per look-up table.
SEGMENT_PATTERNS = 1 << SEGMENT_BITS

#: Bit values of each of the 16 patterns, pre-computed once.
_PATTERN_BITS = np.array(
    [[(pattern >> bit) & 1 for bit in range(SEGMENT_BITS)]
     for pattern in range(SEGMENT_PATTERNS)],
    dtype=np.float64,
)

#: Cap on the (n_queries, n_codes, n_segments) gather tensor of the batched
#: accumulators, in elements (8 bytes each => ~32 MiB peak).  Chunking runs
#: over the query axis only, so results are unchanged.
_BATCH_GATHER_ELEMENTS = 4_000_000


def _as_segment_matrix(segment_ids: np.ndarray, n_segments: int) -> np.ndarray:
    """Normalize segment ids to a 2-D ``(n_codes, n_segments)`` batch.

    A 1-D input of size 0 is an *empty batch* (0 codes), not a single code
    of zero segments; without this rule ``np.atleast_2d`` would promote it
    to shape ``(1, 0)`` and fabricate a spurious result row.
    """
    ids = np.asarray(segment_ids)
    if ids.ndim == 1:
        ids = ids[None, :] if ids.size else ids.reshape(0, n_segments)
    elif ids.ndim != 2:
        raise InvalidParameterError(
            f"segment ids must be 1-D or 2-D, got ndim={ids.ndim}"
        )
    if ids.shape[1] != n_segments:
        raise DimensionMismatchError(
            f"segment count mismatch: codes have {ids.shape[1]}, "
            f"LUTs have {n_segments}"
        )
    return ids


def split_into_segments(bits: np.ndarray) -> np.ndarray:
    """Group a 0/1 bit matrix into 4-bit segment ids.

    Parameters
    ----------
    bits:
        Bit matrix of shape ``(n_codes, code_length)`` with ``code_length``
        a multiple of 4.

    Returns
    -------
    numpy.ndarray
        ``uint8`` matrix of shape ``(n_codes, code_length / 4)`` whose entry
        ``(i, s)`` is the 4-bit pattern of code ``i`` in segment ``s``
        (bit 0 of the segment is the lowest-order bit of the pattern).
    """
    arr = np.atleast_2d(np.asarray(bits))
    if arr.shape[-1] % SEGMENT_BITS != 0:
        raise InvalidParameterError(
            f"code length {arr.shape[-1]} is not a multiple of {SEGMENT_BITS}"
        )
    n_segments = arr.shape[-1] // SEGMENT_BITS
    reshaped = arr.reshape(arr.shape[0], n_segments, SEGMENT_BITS).astype(np.uint8)
    weights = (1 << np.arange(SEGMENT_BITS, dtype=np.uint8))
    return (reshaped * weights).sum(axis=-1, dtype=np.uint8)


def build_query_luts(query_codes: np.ndarray) -> np.ndarray:
    """Pre-compute the per-segment look-up tables for a quantized query.

    Parameters
    ----------
    query_codes:
        Unsigned-integer query coordinates ``q̄_u``, shape ``(code_length,)``
        with ``code_length`` a multiple of 4.  An empty query yields the
        well-shaped empty table ``(0, 16)``.

    Returns
    -------
    numpy.ndarray
        Float array of shape ``(code_length / 4, 16)``; entry ``(s, p)`` is
        the inner product between the query's coordinates in segment ``s``
        and the 4-bit binary pattern ``p``.
    """
    query = np.asarray(query_codes, dtype=np.float64).reshape(-1)
    if query.shape[0] % SEGMENT_BITS != 0:
        raise InvalidParameterError(
            f"query length {query.shape[0]} is not a multiple of {SEGMENT_BITS}"
        )
    n_segments = query.shape[0] // SEGMENT_BITS
    segments = query.reshape(n_segments, SEGMENT_BITS)
    # (n_segments, 16) = (n_segments, 4) @ (4, 16)
    return segments @ _PATTERN_BITS.T


def build_query_luts_batch(query_codes: np.ndarray) -> np.ndarray:
    """Pre-compute LUTs for a batch of quantized queries at once.

    Parameters
    ----------
    query_codes:
        Unsigned-integer query coordinates, shape ``(n_queries, code_length)``
        with ``code_length`` a multiple of 4.

    Returns
    -------
    numpy.ndarray
        Float array of shape ``(n_queries, code_length / 4, 16)``; slice
        ``[i]`` equals ``build_query_luts(query_codes[i])``.
    """
    queries = np.asarray(query_codes, dtype=np.float64)
    if queries.ndim != 2:
        raise InvalidParameterError(
            f"query batch must be 2-D, got ndim={queries.ndim}"
        )
    if queries.shape[1] % SEGMENT_BITS != 0:
        raise InvalidParameterError(
            f"query length {queries.shape[1]} is not a multiple of {SEGMENT_BITS}"
        )
    n_segments = queries.shape[1] // SEGMENT_BITS
    segments = queries.reshape(queries.shape[0], n_segments, SEGMENT_BITS)
    return segments @ _PATTERN_BITS.T


def lut_accumulate(segment_ids: np.ndarray, luts: np.ndarray) -> np.ndarray:
    """Accumulate look-up-table values for a batch of codes.

    Parameters
    ----------
    segment_ids:
        Output of :func:`split_into_segments`, shape ``(n_codes, n_segments)``.
        An empty batch (0 codes) yields the well-shaped empty result ``(0,)``.
    luts:
        Output of :func:`build_query_luts`, shape ``(n_segments, 16)``.

    Returns
    -------
    numpy.ndarray
        ``<x_b, q̄_u>`` per code as ``float64`` (exact integers when the query
        codes are integers).
    """
    tables = np.asarray(luts, dtype=np.float64)
    if tables.ndim != 2 or tables.shape[1] != SEGMENT_PATTERNS:
        raise DimensionMismatchError(
            f"LUTs must have {SEGMENT_PATTERNS} entries per segment"
        )
    ids = _as_segment_matrix(segment_ids, tables.shape[0])
    segment_index = np.arange(ids.shape[1])[None, :]
    values = tables[segment_index, ids.astype(np.intp)]
    return values.sum(axis=1)


def lut_accumulate_batch(segment_ids: np.ndarray, luts: np.ndarray) -> np.ndarray:
    """Accumulate LUT values for a batch of codes against a batch of queries.

    Parameters
    ----------
    segment_ids:
        Output of :func:`split_into_segments`, shape ``(n_codes, n_segments)``.
    luts:
        Output of :func:`build_query_luts_batch`, shape
        ``(n_queries, n_segments, 16)``.

    Returns
    -------
    numpy.ndarray
        Float64 matrix of shape ``(n_queries, n_codes)``; row ``i`` equals
        ``lut_accumulate(segment_ids, luts[i])`` bit-for-bit (the
        accumulated values are exact integers).
    """
    tables = np.asarray(luts, dtype=np.float64)
    if tables.ndim != 3 or tables.shape[2] != SEGMENT_PATTERNS:
        raise DimensionMismatchError(
            f"batched LUTs must have shape (n_queries, n_segments, "
            f"{SEGMENT_PATTERNS})"
        )
    ids = _as_segment_matrix(segment_ids, tables.shape[1])
    segment_index = np.arange(ids.shape[1])[None, :]
    idx = ids.astype(np.intp)
    # (n_queries, n_codes, n_segments) gather, reduced over segments;
    # chunked over queries to bound the transient tensor.
    n_queries = tables.shape[0]
    per_query = max(1, ids.shape[0] * ids.shape[1])
    step = max(1, _BATCH_GATHER_ELEMENTS // per_query)
    out = np.empty((n_queries, ids.shape[0]), dtype=np.float64)
    for lo in range(0, n_queries, step):
        hi = min(lo + step, n_queries)
        out[lo:hi] = tables[lo:hi, segment_index, idx].sum(axis=2)
    return out


def quantize_luts_to_uint8(
    luts: np.ndarray,
) -> tuple[np.ndarray, float, float]:
    """Quantize LUT entries to ``uint8`` as the AVX2 fast-scan layout does.

    The hardware implementation stores each LUT entry as an 8-bit unsigned
    integer to fit two tables per 256-bit register.  This helper performs
    the same quantization (affine map of the value range onto 0..255) and
    returns the scale and offset needed to undo it after accumulation.

    Returns
    -------
    (quantized, scale, offset):
        ``quantized`` has dtype ``uint8`` and the same shape as ``luts``;
        a LUT value ``v`` is recovered approximately as
        ``offset + scale * quantized``.  A constant table quantizes to
        all-zero codes with ``scale == 0.0``, making the recovery exact.

    Raises
    ------
    InvalidParameterError
        If any LUT entry is NaN or infinite: a non-finite value would
        poison the min/max range and silently produce garbage codes.
    """
    tables = np.asarray(luts, dtype=np.float64)
    if not np.isfinite(tables).all():
        raise InvalidParameterError("LUT entries must be finite")
    if tables.size == 0:
        return np.zeros_like(tables, dtype=np.uint8), 0.0, 0.0
    low = float(tables.min())
    high = float(tables.max())
    if high <= low:
        return np.zeros_like(tables, dtype=np.uint8), 0.0, low
    scale = (high - low) / 255.0
    quantized = np.round((tables - low) / scale).astype(np.uint8)
    return quantized, scale, low


def lut_accumulate_uint8(
    segment_ids: np.ndarray,
    quantized_luts: np.ndarray,
    scale: float,
    offset: float,
) -> np.ndarray:
    """Accumulate ``uint8``-quantized LUTs and map back to float values.

    Mirrors the reduced-precision accumulation of the SIMD fast-scan: the
    result is ``offset * n_segments + scale * sum(lookups)`` and therefore
    carries the (small) extra error the paper's batch implementation incurs.
    An empty code batch yields the well-shaped empty result ``(0,)``.
    """
    tables = np.asarray(quantized_luts)
    if tables.dtype != np.uint8:
        raise InvalidParameterError("quantized_luts must have dtype uint8")
    ids = _as_segment_matrix(segment_ids, tables.shape[0])
    segment_index = np.arange(ids.shape[1])[None, :]
    values = tables[segment_index, ids].astype(np.int64)
    return offset * ids.shape[1] + scale * values.sum(axis=1)


def lut_accumulate_uint8_batch(
    segment_ids: np.ndarray,
    quantized_luts: np.ndarray,
    scales: np.ndarray,
    offsets: np.ndarray,
) -> np.ndarray:
    """Batched variant of :func:`lut_accumulate_uint8`.

    Parameters
    ----------
    segment_ids:
        Output of :func:`split_into_segments`, shape ``(n_codes, n_segments)``.
    quantized_luts:
        Stacked per-query ``uint8`` tables, shape
        ``(n_queries, n_segments, 16)``.
    scales, offsets:
        Per-query dequantization factors, shape ``(n_queries,)``.

    Returns
    -------
    numpy.ndarray
        Float64 matrix of shape ``(n_queries, n_codes)``; row ``i`` equals
        ``lut_accumulate_uint8(segment_ids, quantized_luts[i], scales[i],
        offsets[i])`` bit-for-bit (identical elementwise scalar op order:
        ``offset * n_segments + scale * int_sum``).
    """
    tables = np.asarray(quantized_luts)
    if tables.dtype != np.uint8:
        raise InvalidParameterError("quantized_luts must have dtype uint8")
    if tables.ndim != 3 or tables.shape[2] != SEGMENT_PATTERNS:
        raise DimensionMismatchError(
            f"batched LUTs must have shape (n_queries, n_segments, "
            f"{SEGMENT_PATTERNS})"
        )
    ids = _as_segment_matrix(segment_ids, tables.shape[1])
    scale_col = np.asarray(scales, dtype=np.float64).reshape(-1, 1)
    offset_col = np.asarray(offsets, dtype=np.float64).reshape(-1, 1)
    if scale_col.shape[0] != tables.shape[0] or offset_col.shape[0] != tables.shape[0]:
        raise DimensionMismatchError(
            "scales/offsets must have one entry per query LUT"
        )
    segment_index = np.arange(ids.shape[1])[None, :]
    idx = ids.astype(np.intp)
    n_queries = tables.shape[0]
    per_query = max(1, ids.shape[0] * ids.shape[1])
    step = max(1, _BATCH_GATHER_ELEMENTS // per_query)
    sums = np.empty((n_queries, ids.shape[0]), dtype=np.int64)
    for lo in range(0, n_queries, step):
        hi = min(lo + step, n_queries)
        sums[lo:hi] = (
            tables[lo:hi, segment_index, idx].astype(np.int64).sum(axis=2)
        )
    return offset_col * ids.shape[1] + scale_col * sums


__all__ = [
    "SEGMENT_BITS",
    "SEGMENT_PATTERNS",
    "split_into_segments",
    "build_query_luts",
    "build_query_luts_batch",
    "lut_accumulate",
    "lut_accumulate_batch",
    "quantize_luts_to_uint8",
    "lut_accumulate_uint8",
    "lut_accumulate_uint8_batch",
]
