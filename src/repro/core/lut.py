"""4-bit look-up-table accumulation (the batch computation path of Sec. 3.3.2).

The paper's batch path splits each ``D``-bit code into ``D/4`` sub-segments of
4 bits and pre-computes, per sub-segment, a 16-entry table holding the inner
product between the quantized query's 4 coordinates in that sub-segment and
every possible 4-bit pattern.  ``<x_b, q_u>`` is then the sum of ``D/4`` table
lookups.  On real hardware the tables live in SIMD registers and the lookups
use shuffle instructions (the PQ fast-scan layout); here the same structure is
emulated with vectorized NumPy gathers, which preserves the algorithm and the
operation counts while running at NumPy speed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionMismatchError, InvalidParameterError

#: Number of bits per look-up-table sub-segment (matches the AVX2 fast-scan layout).
SEGMENT_BITS = 4

#: Number of entries per look-up table.
SEGMENT_PATTERNS = 1 << SEGMENT_BITS

#: Bit values of each of the 16 patterns, pre-computed once.
_PATTERN_BITS = np.array(
    [[(pattern >> bit) & 1 for bit in range(SEGMENT_BITS)]
     for pattern in range(SEGMENT_PATTERNS)],
    dtype=np.float64,
)


def split_into_segments(bits: np.ndarray) -> np.ndarray:
    """Group a 0/1 bit matrix into 4-bit segment ids.

    Parameters
    ----------
    bits:
        Bit matrix of shape ``(n_codes, code_length)`` with ``code_length``
        a multiple of 4.

    Returns
    -------
    numpy.ndarray
        ``uint8`` matrix of shape ``(n_codes, code_length / 4)`` whose entry
        ``(i, s)`` is the 4-bit pattern of code ``i`` in segment ``s``
        (bit 0 of the segment is the lowest-order bit of the pattern).
    """
    arr = np.atleast_2d(np.asarray(bits))
    if arr.shape[-1] % SEGMENT_BITS != 0:
        raise InvalidParameterError(
            f"code length {arr.shape[-1]} is not a multiple of {SEGMENT_BITS}"
        )
    n_segments = arr.shape[-1] // SEGMENT_BITS
    reshaped = arr.reshape(arr.shape[0], n_segments, SEGMENT_BITS).astype(np.uint8)
    weights = (1 << np.arange(SEGMENT_BITS, dtype=np.uint8))
    return (reshaped * weights).sum(axis=-1, dtype=np.uint8)


def build_query_luts(query_codes: np.ndarray) -> np.ndarray:
    """Pre-compute the per-segment look-up tables for a quantized query.

    Parameters
    ----------
    query_codes:
        Unsigned-integer query coordinates ``q̄_u``, shape ``(code_length,)``
        with ``code_length`` a multiple of 4.

    Returns
    -------
    numpy.ndarray
        Float array of shape ``(code_length / 4, 16)``; entry ``(s, p)`` is
        the inner product between the query's coordinates in segment ``s``
        and the 4-bit binary pattern ``p``.
    """
    query = np.asarray(query_codes, dtype=np.float64).reshape(-1)
    if query.shape[0] % SEGMENT_BITS != 0:
        raise InvalidParameterError(
            f"query length {query.shape[0]} is not a multiple of {SEGMENT_BITS}"
        )
    n_segments = query.shape[0] // SEGMENT_BITS
    segments = query.reshape(n_segments, SEGMENT_BITS)
    # (n_segments, 16) = (n_segments, 4) @ (4, 16)
    return segments @ _PATTERN_BITS.T


def lut_accumulate(segment_ids: np.ndarray, luts: np.ndarray) -> np.ndarray:
    """Accumulate look-up-table values for a batch of codes.

    Parameters
    ----------
    segment_ids:
        Output of :func:`split_into_segments`, shape ``(n_codes, n_segments)``.
    luts:
        Output of :func:`build_query_luts`, shape ``(n_segments, 16)``.

    Returns
    -------
    numpy.ndarray
        ``<x_b, q̄_u>`` per code as ``float64`` (exact integers when the query
        codes are integers).
    """
    ids = np.atleast_2d(np.asarray(segment_ids))
    tables = np.asarray(luts, dtype=np.float64)
    if ids.shape[1] != tables.shape[0]:
        raise DimensionMismatchError(
            f"segment count mismatch: codes have {ids.shape[1]}, "
            f"LUTs have {tables.shape[0]}"
        )
    if tables.shape[1] != SEGMENT_PATTERNS:
        raise DimensionMismatchError(
            f"LUTs must have {SEGMENT_PATTERNS} entries per segment"
        )
    segment_index = np.arange(ids.shape[1])[None, :]
    values = tables[segment_index, ids.astype(np.intp)]
    return values.sum(axis=1)


def quantize_luts_to_uint8(
    luts: np.ndarray,
) -> tuple[np.ndarray, float, float]:
    """Quantize LUT entries to ``uint8`` as the AVX2 fast-scan layout does.

    The hardware implementation stores each LUT entry as an 8-bit unsigned
    integer to fit two tables per 256-bit register.  This helper performs
    the same quantization (affine map of the value range onto 0..255) and
    returns the scale and offset needed to undo it after accumulation.

    Returns
    -------
    (quantized, scale, offset):
        ``quantized`` has dtype ``uint8`` and the same shape as ``luts``;
        a LUT value ``v`` is recovered approximately as
        ``offset + scale * quantized``.
    """
    tables = np.asarray(luts, dtype=np.float64)
    low = float(tables.min())
    high = float(tables.max())
    if high <= low:
        return np.zeros_like(tables, dtype=np.uint8), 1.0, low
    scale = (high - low) / 255.0
    quantized = np.round((tables - low) / scale).astype(np.uint8)
    return quantized, scale, low


def lut_accumulate_uint8(
    segment_ids: np.ndarray,
    quantized_luts: np.ndarray,
    scale: float,
    offset: float,
) -> np.ndarray:
    """Accumulate ``uint8``-quantized LUTs and map back to float values.

    Mirrors the reduced-precision accumulation of the SIMD fast-scan: the
    result is ``offset * n_segments + scale * sum(lookups)`` and therefore
    carries the (small) extra error the paper's batch implementation incurs.
    """
    ids = np.atleast_2d(np.asarray(segment_ids))
    tables = np.asarray(quantized_luts)
    if tables.dtype != np.uint8:
        raise InvalidParameterError("quantized_luts must have dtype uint8")
    if ids.shape[1] != tables.shape[0]:
        raise DimensionMismatchError(
            f"segment count mismatch: codes have {ids.shape[1]}, "
            f"LUTs have {tables.shape[0]}"
        )
    segment_index = np.arange(ids.shape[1])[None, :]
    values = tables[segment_index, ids].astype(np.int64)
    return offset * ids.shape[1] + scale * values.sum(axis=1)


__all__ = [
    "SEGMENT_BITS",
    "SEGMENT_PATTERNS",
    "split_into_segments",
    "build_query_luts",
    "lut_accumulate",
    "quantize_luts_to_uint8",
    "lut_accumulate_uint8",
]
