"""Centroid-based normalization of raw vectors (Sec. 3.1.1).

RaBitQ works on *unit* vectors.  Raw data vectors are centred on a centroid
``c`` (the dataset mean, or the per-cluster IVF centroid) and scaled to unit
norm.  The squared distance between raw vectors then decomposes (Eq. 2) into

    ||o_r - q_r||^2 = ||o_r - c||^2 + ||q_r - c||^2
                      - 2 ||o_r - c|| ||q_r - c|| <o, q>,

so estimating the raw distance reduces to estimating the inner product of
the normalized vectors.  The norms ``||o_r - c||`` are pre-computed at index
time; ``||q_r - c||`` is computed once per query.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DimensionMismatchError
from repro.substrates.linalg import as_float_matrix, normalize_rows


@dataclass(frozen=True)
class NormalizedVectors:
    """Raw vectors normalized relative to a centroid.

    Attributes
    ----------
    unit_vectors:
        The unit vectors ``o = (o_r - c) / ||o_r - c||``; zero residuals stay
        zero vectors.
    norms:
        The residual norms ``||o_r - c||``.
    centroid:
        The centroid ``c`` used for the normalization.
    """

    unit_vectors: np.ndarray
    norms: np.ndarray
    centroid: np.ndarray

    @property
    def dim(self) -> int:
        """Dimensionality of the vectors."""
        return int(self.unit_vectors.shape[1])

    def __len__(self) -> int:
        return int(self.unit_vectors.shape[0])


def compute_centroid(data: np.ndarray) -> np.ndarray:
    """Mean of the raw data vectors (the default normalization centroid)."""
    mat = as_float_matrix(data, "data")
    return mat.mean(axis=0)


def normalize_to_centroid(
    data: np.ndarray, centroid: np.ndarray | None = None
) -> NormalizedVectors:
    """Centre ``data`` on ``centroid`` and normalize each residual to unit norm.

    ``centroid`` defaults to the mean of ``data``.
    """
    mat = as_float_matrix(data, "data")
    if centroid is None:
        centroid = mat.mean(axis=0)
    centre = np.asarray(centroid, dtype=np.float64).reshape(-1)
    if centre.shape[0] != mat.shape[1]:
        raise DimensionMismatchError(
            f"centroid has dimension {centre.shape[0]}, data has {mat.shape[1]}"
        )
    residuals = mat - centre[None, :]
    unit, norms = normalize_rows(residuals, return_norms=True)
    return NormalizedVectors(unit_vectors=unit, norms=norms, centroid=centre)


def normalize_query(query: np.ndarray, centroid: np.ndarray) -> tuple[np.ndarray, float]:
    """Normalize a single raw query vector relative to ``centroid``.

    Returns ``(unit_query, ||q_r - c||)``; a query that coincides with the
    centroid returns the zero vector and norm 0.
    """
    vec = np.asarray(query, dtype=np.float64).reshape(-1)
    centre = np.asarray(centroid, dtype=np.float64).reshape(-1)
    if vec.shape[0] != centre.shape[0]:
        raise DimensionMismatchError(
            f"query has dimension {vec.shape[0]}, centroid has {centre.shape[0]}"
        )
    residual = vec - centre
    norm = float(np.linalg.norm(residual))
    if norm == 0.0:
        return np.zeros_like(residual), 0.0
    return residual / norm, norm


def normalize_queries(
    queries: np.ndarray, centroid: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Normalize a matrix of raw queries relative to ``centroid``.

    Returns ``(unit_queries, norms)`` with one row / entry per query.  The
    norms are computed row by row with the exact same reduction as
    :func:`normalize_query` (``np.linalg.norm`` on a 1-D vector) rather than
    an axis-reduction over the matrix: BLAS reduces 1-D and 2-D inputs in
    different accumulation orders, and the batch search engine relies on
    batch preparation being bit-identical to the per-query path.
    """
    mat = as_float_matrix(queries, "queries")
    centre = np.asarray(centroid, dtype=np.float64).reshape(-1)
    if mat.shape[1] != centre.shape[0]:
        raise DimensionMismatchError(
            f"queries have dimension {mat.shape[1]}, centroid has {centre.shape[0]}"
        )
    units = np.empty_like(mat)
    norms = np.empty(mat.shape[0], dtype=np.float64)
    for i in range(mat.shape[0]):
        units[i], norms[i] = normalize_query(mat[i], centre)
    return units, norms


def pad_vectors(vectors: np.ndarray, target_dim: int) -> np.ndarray:
    """Zero-pad vectors to ``target_dim`` columns (code-length padding).

    Padding raw dimensions with zeros before encoding lengthens the
    quantization code and sharpens the error bound (paper Sec. 5.1) without
    changing any norms or inner products.
    """
    mat = as_float_matrix(vectors, "vectors")
    if target_dim < mat.shape[1]:
        raise DimensionMismatchError(
            f"target_dim={target_dim} is smaller than the vector dimension "
            f"{mat.shape[1]}"
        )
    if target_dim == mat.shape[1]:
        return mat
    padded = np.zeros((mat.shape[0], target_dim), dtype=np.float64)
    padded[:, : mat.shape[1]] = mat
    return padded


__all__ = [
    "NormalizedVectors",
    "compute_centroid",
    "normalize_to_centroid",
    "normalize_query",
    "normalize_queries",
    "pad_vectors",
]
