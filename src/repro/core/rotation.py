"""Random orthogonal transformations (the codebook randomization of Sec. 3.1.2).

RaBitQ's codebook is the hypercube ``{-1/sqrt(D), +1/sqrt(D)}^D`` rotated by a
random orthogonal matrix ``P``.  The matrix is never applied to the codebook
explicitly; instead data vectors are multiplied by ``P^-1`` (= ``P^T``) at
index time and query vectors at query time.

Two implementations are provided:

* :class:`QRRotation` — a dense, Haar-distributed orthogonal matrix obtained
  from the QR factorization of a Gaussian matrix.  This matches the paper's
  construction exactly.
* :class:`FastHadamardRotation` — a structured rotation ``H D_3 H D_2 H D_1``
  built from Walsh--Hadamard transforms and random sign flips.  It is an
  ``O(D log D)`` approximation of a Haar rotation frequently used in practice
  (a "fast JLT"); it is included as the optional/extension feature discussed
  in the paper's related work and is exercised by an ablation benchmark.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.substrates.linalg import as_float_matrix
from repro.substrates.rng import RngLike, ensure_rng


def sample_orthogonal_matrix(dim: int, rng: RngLike = None) -> np.ndarray:
    """Sample a Haar-distributed random orthogonal matrix of size ``dim``.

    The matrix is obtained by QR-factorizing a matrix of i.i.d. standard
    Gaussians and fixing the signs so that the distribution is exactly the
    Haar measure on the orthogonal group (Mezzadri, 2007).
    """
    if dim <= 0:
        raise InvalidParameterError("dim must be positive")
    generator = ensure_rng(rng)
    gaussian = generator.standard_normal((dim, dim))
    q_mat, r_mat = np.linalg.qr(gaussian)
    # Normalize the signs: without this correction the QR decomposition does
    # not yield the Haar measure.
    signs = np.sign(np.diag(r_mat))
    signs[signs == 0.0] = 1.0
    return q_mat * signs[None, :]


class Rotation(abc.ABC):
    """Abstract interface of an orthogonal transformation ``P``.

    The two directions used by RaBitQ are exposed explicitly:

    * :meth:`apply` computes ``x P^T`` row-wise (i.e. ``P x`` for column
      vectors) — rotating a vector *into* the randomized codebook's frame.
    * :meth:`apply_inverse` computes ``x P`` row-wise (i.e. ``P^-1 x``) —
      the transformation applied to data and query vectors before encoding.
    """

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise InvalidParameterError("dim must be positive")
        self._dim = int(dim)

    @property
    def dim(self) -> int:
        """Dimensionality the rotation operates on."""
        return self._dim

    def _check_dim(self, matrix: np.ndarray) -> np.ndarray:
        mat = as_float_matrix(matrix, "vectors")
        if mat.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"rotation expects dimension {self._dim}, got {mat.shape[1]}"
            )
        return mat

    @abc.abstractmethod
    def apply(self, vectors: np.ndarray) -> np.ndarray:
        """Apply ``P`` to each row of ``vectors``."""

    @abc.abstractmethod
    def apply_inverse(self, vectors: np.ndarray) -> np.ndarray:
        """Apply ``P^-1`` (= ``P^T``) to each row of ``vectors``."""

    @abc.abstractmethod
    def as_matrix(self) -> np.ndarray:
        """Materialize ``P`` as a dense ``(dim, dim)`` matrix (for tests)."""


class QRRotation(Rotation):
    """Dense Haar-random orthogonal rotation (the paper's construction)."""

    def __init__(self, dim: int, rng: RngLike = None) -> None:
        super().__init__(dim)
        self._matrix = sample_orthogonal_matrix(dim, rng)

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "QRRotation":
        """Wrap an existing orthogonal matrix (no orthogonality re-check)."""
        mat = np.asarray(matrix, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
            raise InvalidParameterError("matrix must be square")
        instance = cls.__new__(cls)
        Rotation.__init__(instance, mat.shape[0])
        instance._matrix = mat
        return instance

    def apply(self, vectors: np.ndarray) -> np.ndarray:
        mat = self._check_dim(vectors)
        return mat @ self._matrix.T

    def apply_inverse(self, vectors: np.ndarray) -> np.ndarray:
        mat = self._check_dim(vectors)
        return mat @ self._matrix

    def as_matrix(self) -> np.ndarray:
        return self._matrix.copy()


def _next_power_of_two(value: int) -> int:
    """Smallest power of two that is >= ``value``."""
    power = 1
    while power < value:
        power *= 2
    return power


def hadamard_transform(matrix: np.ndarray) -> np.ndarray:
    """In-place-style fast Walsh--Hadamard transform along the last axis.

    The input's last-axis length must be a power of two.  The transform is
    normalized by ``1/sqrt(n)`` so that it is orthogonal.
    """
    arr = np.array(matrix, dtype=np.float64, copy=True)
    n = arr.shape[-1]
    if n & (n - 1) != 0:
        raise InvalidParameterError("Hadamard transform requires a power-of-two length")
    h = 1
    while h < n:
        arr = arr.reshape(*arr.shape[:-1], n // (2 * h), 2, h)
        top = arr[..., 0, :] + arr[..., 1, :]
        bottom = arr[..., 0, :] - arr[..., 1, :]
        arr = np.stack([top, bottom], axis=-2).reshape(*arr.shape[:-3], n)
        h *= 2
    return arr / np.sqrt(n)


class FastHadamardRotation(Rotation):
    """Structured rotation ``H D_r ... H D_1`` with random sign diagonals.

    ``H`` is the normalized Walsh--Hadamard transform and each ``D_i`` is a
    diagonal matrix of independent random signs.  With ``rounds >= 3`` the
    transform behaves like a random rotation for JLT purposes while costing
    only ``O(D log D)`` per vector.  The data dimension is internally padded
    to the next power of two.
    """

    def __init__(self, dim: int, rng: RngLike = None, *, rounds: int = 3) -> None:
        super().__init__(dim)
        if rounds < 1:
            raise InvalidParameterError("rounds must be at least 1")
        generator = ensure_rng(rng)
        self._rounds = int(rounds)
        self._padded_dim = _next_power_of_two(dim)
        self._signs = (
            generator.integers(0, 2, size=(self._rounds, self._padded_dim)) * 2 - 1
        ).astype(np.float64)

    @classmethod
    def from_signs(cls, dim: int, signs: np.ndarray) -> "FastHadamardRotation":
        """Rebuild a rotation from its stored sign diagonals.

        ``signs`` must have shape ``(rounds, padded_dim)`` with ``padded_dim``
        the next power of two >= ``dim``.  Because the sign diagonals fully
        determine the transform, the reconstructed rotation applies the exact
        same floating-point operations as the original — this is what the
        persistence layer uses so that a reloaded index stays bit-identical.
        """
        mat = np.asarray(signs, dtype=np.float64)
        if mat.ndim != 2:
            raise InvalidParameterError("signs must be a (rounds, padded_dim) matrix")
        if mat.shape[1] != _next_power_of_two(dim):
            raise DimensionMismatchError(
                f"signs have padded dimension {mat.shape[1]}, expected "
                f"{_next_power_of_two(dim)} for dim={dim}"
            )
        instance = cls.__new__(cls)
        Rotation.__init__(instance, dim)
        instance._rounds = int(mat.shape[0])
        instance._padded_dim = int(mat.shape[1])
        instance._signs = mat
        return instance

    @property
    def padded_dim(self) -> int:
        """Internal power-of-two dimension used by the Hadamard transform."""
        return self._padded_dim

    @property
    def signs(self) -> np.ndarray:
        """The ``(rounds, padded_dim)`` random sign diagonals (for persistence)."""
        return self._signs.copy()

    def _pad(self, matrix: np.ndarray) -> np.ndarray:
        if self._padded_dim == self._dim:
            return matrix
        padded = np.zeros((matrix.shape[0], self._padded_dim), dtype=np.float64)
        padded[:, : self._dim] = matrix
        return padded

    def apply(self, vectors: np.ndarray) -> np.ndarray:
        mat = self._pad(self._check_dim(vectors))
        # Forward: P = (H D_r) ... (H D_1)
        for i in range(self._rounds):
            mat = hadamard_transform(mat * self._signs[i][None, :])
        return mat[:, : self._dim]

    def apply_inverse(self, vectors: np.ndarray) -> np.ndarray:
        mat = self._pad(self._check_dim(vectors))
        # Inverse: P^-1 = (D_1 H) ... (D_r H) since H and D_i are involutions
        # up to normalization (H is symmetric orthogonal, D_i is diagonal ±1).
        for i in reversed(range(self._rounds)):
            mat = hadamard_transform(mat) * self._signs[i][None, :]
        return mat[:, : self._dim]

    def as_matrix(self) -> np.ndarray:
        identity = np.eye(self._dim)
        return self.apply(identity).T

    def is_exactly_orthogonal(self) -> bool:
        """The padded transform is orthogonal; the truncated one is not when
        the data dimension is not a power of two."""
        return self._padded_dim == self._dim


def make_rotation(kind: str, dim: int, rng: RngLike = None) -> Rotation:
    """Factory used by :class:`repro.core.quantizer.RaBitQ`.

    ``kind`` is ``"qr"`` or ``"hadamard"``.
    """
    if kind == "qr":
        return QRRotation(dim, rng)
    if kind == "hadamard":
        return FastHadamardRotation(dim, rng)
    raise InvalidParameterError(f"unknown rotation kind: {kind!r}")


__all__ = [
    "Rotation",
    "QRRotation",
    "FastHadamardRotation",
    "sample_orthogonal_matrix",
    "hadamard_transform",
    "make_rotation",
]
