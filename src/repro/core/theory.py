"""Closed-form theoretical quantities from the paper's analysis (Appendix B).

These functions are used by the verification experiments (Fig. 1/8, Fig. 5)
and by the error-bound-based re-ranking rule of Section 4.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from repro.exceptions import InvalidParameterError


def expected_alignment(dim: int) -> float:
    """Expected value of ``<o_bar, o>`` for a ``dim``-dimensional RaBitQ code.

    The paper derives ``E[<o_bar, o>] = sqrt(D / pi) * 2 Gamma(D/2) /
    ((D - 1) Gamma((D-1)/2))``, which evaluates to roughly 0.8 for all
    practical dimensionalities (0.798 to 0.800 for D between 1e2 and 1e6).
    The computation uses log-gamma for numerical stability at large ``D``.
    """
    if dim < 2:
        raise InvalidParameterError("dim must be at least 2")
    log_ratio = special.gammaln(dim / 2.0) - special.gammaln((dim - 1) / 2.0)
    return math.sqrt(dim / math.pi) * 2.0 * math.exp(log_ratio) / (dim - 1)


def coordinate_density(dim: int, x: np.ndarray) -> np.ndarray:
    """Density ``p_D(x)`` of one coordinate of a uniform unit-sphere vector.

    ``p_D(x) = Gamma(D/2) / (sqrt(pi) Gamma((D-1)/2)) * (1 - x^2)^((D-3)/2)``
    for ``x`` in ``[-1, 1]`` (Lemma B.1).
    """
    if dim < 2:
        raise InvalidParameterError("dim must be at least 2")
    values = np.asarray(x, dtype=np.float64)
    log_coeff = special.gammaln(dim / 2.0) - special.gammaln((dim - 1) / 2.0)
    coeff = math.exp(log_coeff) / math.sqrt(math.pi)
    inside = np.clip(1.0 - values**2, 0.0, None)
    density = coeff * inside ** ((dim - 3) / 2.0)
    density = np.where(np.abs(values) <= 1.0, density, 0.0)
    return density


def error_bound_epsilon(alignment: float, dim: int, epsilon0: float) -> float:
    """Half-width of the confidence interval of the estimator (Eq. 16).

    Parameters
    ----------
    alignment:
        The pre-computed value ``<o_bar, o>`` for the data vector.
    dim:
        The code length ``D`` (after padding).
    epsilon0:
        The confidence parameter ``epsilon_0``.

    Returns
    -------
    float
        ``sqrt((1 - alignment^2) / alignment^2) * epsilon0 / sqrt(D - 1)``.
    """
    if dim < 2:
        raise InvalidParameterError("dim must be at least 2")
    if epsilon0 < 0.0:
        raise InvalidParameterError("epsilon0 must be non-negative")
    alignment = float(alignment)
    if alignment == 0.0:
        return math.inf
    ratio = max(1.0 - alignment**2, 0.0) / (alignment**2)
    return math.sqrt(ratio) * epsilon0 / math.sqrt(dim - 1)


def failure_probability_bound(epsilon0: float, c0: float = 0.5) -> float:
    """Upper bound ``2 exp(-c0 * epsilon0^2)`` on the failure probability.

    ``c0`` is the unspecified universal constant of Theorem 3.2; the default
    of 0.5 corresponds to the sub-Gaussian constant of a single coordinate of
    a uniform unit-sphere vector and matches the empirical behaviour that
    ``epsilon_0 = 1.9`` already yields a near-zero failure rate.
    """
    if epsilon0 < 0.0:
        raise InvalidParameterError("epsilon0 must be non-negative")
    if c0 <= 0.0:
        raise InvalidParameterError("c0 must be positive")
    return min(1.0, 2.0 * math.exp(-c0 * epsilon0**2))


def epsilon0_for_failure_probability(delta: float, c0: float = 0.5) -> float:
    """Invert :func:`failure_probability_bound`: the ``epsilon_0`` needed for
    failure probability at most ``delta``."""
    if not 0.0 < delta < 1.0:
        raise InvalidParameterError("delta must lie strictly between 0 and 1")
    if c0 <= 0.0:
        raise InvalidParameterError("c0 must be positive")
    return math.sqrt(math.log(2.0 / delta) / c0)


def recommended_query_bits(dim: int) -> int:
    """The ``Theta(log log D)`` recommendation for ``B_q`` (Thm. 3.3).

    In practice the paper fixes ``B_q = 4``; this helper returns
    ``max(4, ceil(log2(log2(D))))`` which equals 4 for every practical
    dimensionality (up to ``D = 65536``) and only grows beyond that.
    """
    if dim < 2:
        raise InvalidParameterError("dim must be at least 2")
    return max(4, math.ceil(math.log2(max(math.log2(dim), 2.0))))


def scalar_quantization_error_scale(dim: int, query_bits: int) -> float:
    """Theoretical scale ``O(sqrt(log D / D) / 2^{B_q})`` of the query-
    quantization error (Table 5 row "Ours")."""
    if dim < 2:
        raise InvalidParameterError("dim must be at least 2")
    if query_bits < 1:
        raise InvalidParameterError("query_bits must be at least 1")
    return math.sqrt(math.log(dim) / dim) / (2.0**query_bits)


__all__ = [
    "expected_alignment",
    "coordinate_density",
    "error_bound_epsilon",
    "failure_probability_bound",
    "epsilon0_for_failure_probability",
    "recommended_query_bits",
    "scalar_quantization_error_scale",
]
