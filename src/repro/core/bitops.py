"""Packed bit-string kernels (the single-code computation path of Sec. 3.3.2).

RaBitQ quantization codes are ``D``-bit strings.  This module stores them as
packed ``uint64`` words and provides the popcount-based inner products that
the paper uses for estimating distances for a single data vector:

    <x_b, q_u> = sum_j 2^j * <x_b, q_u^(j)>            (Eq. 21-22)

where ``q_u^(j)`` is the ``j``-th bit-plane of the quantized query.  Each
``<x_b, q_u^(j)>`` is a bitwise AND followed by a popcount.

For multi-query (batch) workloads the same decomposition is evaluated for a
whole *matrix* of quantized queries at once: :func:`bitplanes_from_uint_batch`
packs the bit-planes of every query and :func:`binary_dot_uint_batch` produces
the full ``(n_queries, n_codes)`` integer inner-product matrix with one
broadcasted AND + popcount per bit-plane.  The batch kernels are exact — they
return the same integers as looping :func:`binary_dot_uint` over queries —
which is what lets the batch search engine guarantee results identical to the
per-query path.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionMismatchError, InvalidParameterError

#: Number of bits per packed word.
WORD_BITS = 64

#: Explicit little-endian word dtype: the byte-level pack/unpack kernels
#: rely on byte ``j`` of a word holding bits ``8j .. 8j+7``, which is the
#: little-endian layout.  ``astype`` from/to this dtype is a no-op on
#: little-endian platforms and a byte swap on big-endian ones, keeping the
#: packed format platform-independent.
_WORD_VIEW_DTYPE = np.dtype("<u8")


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack an array of 0/1 values into ``uint64`` words.

    Parameters
    ----------
    bits:
        Array of shape ``(..., n_bits)`` containing only 0s and 1s.  The
        trailing dimension is padded with zeros to a multiple of 64.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(..., ceil(n_bits / 64))`` and dtype ``uint64``.
        Bit ``i`` of the original array is stored in word ``i // 64`` at bit
        position ``i % 64`` (LSB-first within each word).
    """
    arr = np.asarray(bits)
    if arr.ndim == 0:
        raise InvalidParameterError("bits must have at least one dimension")
    # Cheap hot-path validation: a fused elementwise check instead of the
    # former sort-based ``np.unique`` scan (O(n log n) and an extra copy).
    if arr.size and ((arr != 0) & (arr != 1)).any():
        raise InvalidParameterError("bits must contain only 0s and 1s")
    n_bits = arr.shape[-1]
    n_words = (n_bits + WORD_BITS - 1) // WORD_BITS
    if arr.dtype != np.uint8 and arr.dtype != np.bool_:
        arr = arr.astype(np.uint8)
    # ``np.packbits(bitorder="little")`` packs element ``8*j + k`` into bit
    # ``k`` of byte ``j`` — exactly the LSB-first layout of our words on a
    # little-endian platform, so the packed bytes can be reinterpreted as
    # ``uint64`` words directly (a view, not an arithmetic reduction).
    packed_bytes = np.packbits(arr, axis=-1, bitorder="little")
    n_word_bytes = n_words * (WORD_BITS // 8)
    if packed_bytes.shape[-1] != n_word_bytes:
        # Only inputs whose bit count is not a multiple of 64 pay for the
        # zero-padded copy; aligned inputs are viewed in place.
        padded = np.zeros(arr.shape[:-1] + (n_word_bytes,), dtype=np.uint8)
        padded[..., : packed_bytes.shape[-1]] = packed_bytes
        packed_bytes = padded
    words = packed_bytes.view(_WORD_VIEW_DTYPE).astype(np.uint64, copy=False)
    return words.reshape(arr.shape[:-1] + (n_words,))


def unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns a 0/1 array of ``uint8``.

    The words are expanded with a single :func:`numpy.unpackbits` call
    bounded by ``count=n_bits``, so no ``(..., n_words, 64)`` intermediate is
    materialized: peak memory is the output array itself (plus the byte view
    of the input), not 8x the output as with the former broadcasted-shift
    expansion.
    """
    arr = np.ascontiguousarray(words, dtype=np.uint64)
    if n_bits < 0:
        raise InvalidParameterError("n_bits must be non-negative")
    n_words = arr.shape[-1] if arr.ndim else 0
    if n_bits > n_words * WORD_BITS:
        raise InvalidParameterError(
            f"n_bits={n_bits} exceeds capacity of {n_words} words"
        )
    if arr.size == 0 or n_bits == 0:
        return np.zeros(arr.shape[:-1] + (n_bits,), dtype=np.uint8)
    as_bytes = arr.astype(_WORD_VIEW_DTYPE, copy=False).view(np.uint8)
    return np.unpackbits(as_bytes, axis=-1, count=n_bits, bitorder="little")


def popcount(words: np.ndarray) -> np.ndarray:
    """Number of set bits in each ``uint64`` word (vectorized)."""
    return np.bitwise_count(np.asarray(words, dtype=np.uint64))


def popcount_total(words: np.ndarray, axis: int = -1) -> np.ndarray:
    """Total number of set bits along ``axis`` (typically the word axis)."""
    return popcount(words).sum(axis=axis, dtype=np.int64)


def binary_and_popcount(codes: np.ndarray, query_plane: np.ndarray) -> np.ndarray:
    """Inner product of packed binary codes with one packed binary bit-plane.

    Parameters
    ----------
    codes:
        Packed codes, shape ``(n_codes, n_words)`` or ``(n_words,)``.
    query_plane:
        One packed bit-plane of the quantized query, shape ``(n_words,)``.

    Returns
    -------
    numpy.ndarray
        ``<x_b, plane>`` per code as ``int64``.
    """
    codes_arr = np.asarray(codes, dtype=np.uint64)
    plane = np.asarray(query_plane, dtype=np.uint64)
    if plane.ndim != 1:
        raise DimensionMismatchError("query_plane must be one-dimensional")
    if codes_arr.shape[-1] != plane.shape[0]:
        raise DimensionMismatchError(
            f"word-count mismatch: codes have {codes_arr.shape[-1]}, "
            f"plane has {plane.shape[0]}"
        )
    return popcount(codes_arr & plane).sum(axis=-1, dtype=np.int64)


def binary_dot_uint(codes: np.ndarray, query_planes: np.ndarray) -> np.ndarray:
    """Compute ``<x_b, q_u>`` via bit-plane decomposition (Eq. 21-22).

    Parameters
    ----------
    codes:
        Packed binary codes, shape ``(n_codes, n_words)``.
    query_planes:
        Packed bit-planes of the quantized query, shape
        ``(n_planes, n_words)``; plane ``j`` holds bit ``j`` of every query
        coordinate.

    Returns
    -------
    numpy.ndarray
        Integer inner products ``<x_b, q_u>`` per code (``int64``).
    """
    codes_arr = np.atleast_2d(np.asarray(codes, dtype=np.uint64))
    planes = np.atleast_2d(np.asarray(query_planes, dtype=np.uint64))
    if codes_arr.shape[-1] != planes.shape[-1]:
        raise DimensionMismatchError(
            "codes and query_planes must have the same number of words"
        )
    total = np.zeros(codes_arr.shape[0], dtype=np.int64)
    for j in range(planes.shape[0]):
        total += binary_and_popcount(codes_arr, planes[j]) << j
    return total


#: Below this many ``n_queries * n_codes * n_words`` cells the broadcasted
#: popcount path wins (no unpacking); above it the kernel unpacks and hands
#: the work to BLAS GEMM, which is exact for these integer magnitudes
#: (every partial sum stays far below 2^53).
_BATCH_KERNEL_GEMM_CELLS = 32_768

#: Cap on the float64 cells of the unpacked code matrix per GEMM call
#: (about 256 MiB); larger code sets are processed in chunks of codes.
_GEMM_MAX_CODE_CELLS = 32_000_000


def binary_dot_uint_batch(
    codes: np.ndarray,
    query_planes: np.ndarray,
    *,
    query_values: np.ndarray | None = None,
) -> np.ndarray:
    """Compute ``<x_b, q_u>`` for every (query, code) pair (batch Eq. 21-22).

    Two exact execution strategies share this entry point: small workloads
    run the broadcasted AND + popcount directly on the packed words; large
    ones unpack the codes (in bounded chunks along the code axis) and
    evaluate the batch as float64 GEMMs.  The GEMM is *not* an
    approximation — bits are 0/1 and the quantized query coordinates fit in
    16 bits, so every product and partial sum is an integer far below 2^53
    and float64 arithmetic is exact regardless of accumulation order.

    Parameters
    ----------
    codes:
        Packed binary codes, shape ``(n_codes, n_words)``.
    query_planes:
        Packed bit-planes of the quantized queries, shape
        ``(n_queries, n_planes, n_words)`` (one :func:`bitplanes_from_uint`
        stack per query, see :func:`bitplanes_from_uint_batch`).
    query_values:
        Optional unpacked quantized query coordinates of shape
        ``(n_queries, n_dims)`` with ``n_dims <= n_words * 64`` — the array
        ``query_planes`` was packed from.  Callers that still hold the raw
        codes (e.g. :class:`~repro.core.query.QuantizedQueryMatrix`) pass
        them here so the GEMM path skips reconstructing them from the
        bit-planes; the result is identical either way.

    Returns
    -------
    numpy.ndarray
        Integer inner products of shape ``(n_queries, n_codes)`` as
        ``int64``.  Row ``i`` equals ``binary_dot_uint(codes,
        query_planes[i])`` exactly (both strategies are integer-exact).
    """
    codes_arr = np.atleast_2d(np.asarray(codes, dtype=np.uint64))
    planes = np.asarray(query_planes, dtype=np.uint64)
    if planes.ndim == 2:
        planes = planes[None, :, :]
    if planes.ndim != 3:
        raise DimensionMismatchError(
            "query_planes must have shape (n_queries, n_planes, n_words)"
        )
    if codes_arr.shape[-1] != planes.shape[-1]:
        raise DimensionMismatchError(
            "codes and query_planes must have the same number of words"
        )
    n_queries, n_planes, n_words = planes.shape
    n_codes = codes_arr.shape[0]
    n_bits = n_words * WORD_BITS
    if query_values is not None:
        provided = np.asarray(query_values)
        if (
            provided.ndim != 2
            or provided.shape[0] != n_queries
            or provided.shape[1] > n_bits
        ):
            raise DimensionMismatchError(
                "query_values must have shape (n_queries, n_dims) with "
                "n_dims <= n_words * 64"
            )
    total = np.zeros((n_queries, n_codes), dtype=np.int64)
    if n_codes == 0 or n_queries == 0:
        return total

    # The GEMM strategy is exact only while every product and partial sum
    # stays an integer below 2^53; query values of at most 16 bits guarantee
    # that with huge margin, so wider bit-plane stacks always take the
    # popcount path.
    if n_planes <= 16 and n_queries * n_codes * n_words >= _BATCH_KERNEL_GEMM_CELLS:
        values = np.zeros((n_queries, n_bits), dtype=np.float64)
        if query_values is not None:
            values[:, : provided.shape[1]] = provided.astype(np.float64)
        else:
            for j in range(n_planes):
                values += float(1 << j) * unpack_bits(
                    planes[:, j, :], n_bits
                ).astype(np.float64)
        # Chunk the code axis so the unpacked float64 code matrix stays
        # bounded; each chunk fills a column block of the result.
        chunk = max(1, _GEMM_MAX_CODE_CELLS // n_bits)
        for start in range(0, n_codes, chunk):
            block = codes_arr[start : start + chunk]
            code_bits = unpack_bits(block, n_bits).astype(np.float64)
            total[:, start : start + chunk] = np.rint(
                values @ code_bits.T
            ).astype(np.int64)
        return total

    for j in range(n_planes):
        anded = codes_arr[None, :, :] & planes[:, j, None, :]
        total += popcount(anded).sum(axis=-1, dtype=np.int64) << j
    return total


def bitplanes_from_uint(values: np.ndarray, n_bits: int) -> np.ndarray:
    """Decompose unsigned integers into packed bit-planes.

    Parameters
    ----------
    values:
        Unsigned integers (the quantized query coordinates), shape
        ``(n_dims,)``.
    n_bits:
        Number of bit-planes to extract (``B_q``).

    Returns
    -------
    numpy.ndarray
        Packed planes of shape ``(n_bits, ceil(n_dims / 64))``; plane ``j``
        contains bit ``j`` of every value.
    """
    vals = np.asarray(values, dtype=np.uint64)
    if vals.ndim != 1:
        raise DimensionMismatchError("values must be one-dimensional")
    if n_bits < 1:
        raise InvalidParameterError("n_bits must be at least 1")
    max_allowed = (1 << n_bits) - 1
    if vals.size and int(vals.max()) > max_allowed:
        raise InvalidParameterError(
            f"values contain {int(vals.max())} which does not fit in {n_bits} bits"
        )
    planes = [(vals >> np.uint64(j)) & np.uint64(1) for j in range(n_bits)]
    return np.stack([pack_bits(p.astype(np.uint8)) for p in planes], axis=0)


def bitplanes_from_uint_batch(values: np.ndarray, n_bits: int) -> np.ndarray:
    """Decompose a matrix of unsigned integers into packed bit-planes.

    Parameters
    ----------
    values:
        Unsigned integers, shape ``(n_queries, n_dims)`` (one quantized query
        per row).
    n_bits:
        Number of bit-planes to extract (``B_q``).

    Returns
    -------
    numpy.ndarray
        Packed planes of shape ``(n_queries, n_bits, ceil(n_dims / 64))``;
        entry ``[i, j]`` equals ``bitplanes_from_uint(values[i], n_bits)[j]``.
    """
    vals = np.asarray(values, dtype=np.uint64)
    if vals.ndim != 2:
        raise DimensionMismatchError("values must be two-dimensional")
    if n_bits < 1:
        raise InvalidParameterError("n_bits must be at least 1")
    max_allowed = (1 << n_bits) - 1
    if vals.size and int(vals.max()) > max_allowed:
        raise InvalidParameterError(
            f"values contain {int(vals.max())} which does not fit in {n_bits} bits"
        )
    planes = [
        pack_bits(((vals >> np.uint64(j)) & np.uint64(1)).astype(np.uint8))
        for j in range(n_bits)
    ]
    return np.stack(planes, axis=1)


def pack_level_planes(levels: np.ndarray, bits: int) -> np.ndarray:
    """Pack per-dimension level values into plane-major packed bit-planes.

    The multi-bit (extended) RaBitQ code of a vector is a level value
    ``u_j in [0, 2^bits - 1]`` per dimension.  Levels are stored as ``bits``
    packed bit-planes laid out plane-major: plane ``p`` (holding bit ``p``
    of every level) occupies words ``[p * n_words, (p+1) * n_words)`` of
    each row.  For ``bits == 1`` this is exactly :func:`pack_bits`, so the
    binary kernels keep operating on the first (and only) plane unchanged.

    Parameters
    ----------
    levels:
        Level matrix of shape ``(n_rows, code_length)`` with values in
        ``[0, 2^bits - 1]``.
    bits:
        Bits per dimension ``B``.

    Returns
    -------
    numpy.ndarray
        ``uint64`` array of shape ``(n_rows, bits * ceil(code_length/64))``.
    """
    arr = np.atleast_2d(np.asarray(levels))
    if bits < 1:
        raise InvalidParameterError("bits must be at least 1")
    max_allowed = (1 << bits) - 1
    if arr.size and (
        (arr < 0).any() or (arr.astype(np.int64) > max_allowed).any()
    ):
        raise InvalidParameterError(
            f"levels must lie in [0, {max_allowed}] for bits={bits}"
        )
    vals = arr.astype(np.uint64)
    planes = [
        pack_bits(((vals >> np.uint64(p)) & np.uint64(1)).astype(np.uint8))
        for p in range(bits)
    ]
    return np.concatenate(planes, axis=-1)


def unpack_level_planes(
    packed: np.ndarray, code_length: int, bits: int
) -> np.ndarray:
    """Inverse of :func:`pack_level_planes`; returns ``uint8`` levels.

    Parameters
    ----------
    packed:
        Plane-major packed planes, shape ``(n_rows, bits * n_words)`` with
        ``n_words = ceil(code_length / 64)``.
    code_length:
        Number of level values per row.
    bits:
        Bits per dimension ``B`` (levels must fit in ``uint8``, i.e.
        ``bits <= 8``).

    Returns
    -------
    numpy.ndarray
        ``uint8`` matrix of shape ``(n_rows, code_length)``.
    """
    arr = np.atleast_2d(np.asarray(packed, dtype=np.uint64))
    if bits < 1 or bits > 8:
        raise InvalidParameterError("bits must lie in [1, 8]")
    n_words = (code_length + WORD_BITS - 1) // WORD_BITS
    if arr.shape[-1] != bits * n_words:
        raise DimensionMismatchError(
            f"packed planes have {arr.shape[-1]} words; expected "
            f"{bits} x {n_words} for code length {code_length}"
        )
    out = np.zeros(arr.shape[:-1] + (code_length,), dtype=np.uint8)
    for p in range(bits):
        plane = unpack_bits(
            arr[..., p * n_words : (p + 1) * n_words], code_length
        )
        out |= plane << p
    return out


def multibit_dot_uint(
    packed_codes: np.ndarray, query_planes: np.ndarray, bits: int
) -> np.ndarray:
    """Compute ``<u, q_u>`` for plane-major multi-bit codes (Eq. 21-22 per plane).

    Each of the ``bits`` code planes contributes its binary-kernel dot,
    weighted by its power of two:

        <u, q_u> = sum_p 2^p * <plane_p, q_u>

    For ``bits == 1`` this reduces to :func:`binary_dot_uint` on the code
    words, so the binary path is the degenerate single-plane case.

    Parameters
    ----------
    packed_codes:
        Plane-major packed codes, shape ``(n_codes, bits * n_words)``.
    query_planes:
        Packed bit-planes of the quantized query, shape
        ``(n_planes, n_words)``.
    bits:
        Bits per dimension ``B`` of the data codes.

    Returns
    -------
    numpy.ndarray
        Integer inner products per code (``int64``).
    """
    codes_arr = np.atleast_2d(np.asarray(packed_codes, dtype=np.uint64))
    if bits < 1:
        raise InvalidParameterError("bits must be at least 1")
    if codes_arr.shape[-1] % bits != 0:
        raise DimensionMismatchError(
            f"packed codes have {codes_arr.shape[-1]} words, not a multiple "
            f"of bits={bits}"
        )
    n_words = codes_arr.shape[-1] // bits
    total = np.zeros(codes_arr.shape[0], dtype=np.int64)
    for p in range(bits):
        plane = codes_arr[:, p * n_words : (p + 1) * n_words]
        total += binary_dot_uint(plane, query_planes) << p
    return total


def hamming_distance(codes_a: np.ndarray, codes_b: np.ndarray) -> np.ndarray:
    """Hamming distance between packed codes (broadcasting on the first axis)."""
    a = np.asarray(codes_a, dtype=np.uint64)
    b = np.asarray(codes_b, dtype=np.uint64)
    if a.shape[-1] != b.shape[-1]:
        raise DimensionMismatchError("codes must have the same number of words")
    return popcount(a ^ b).sum(axis=-1, dtype=np.int64)


__all__ = [
    "WORD_BITS",
    "pack_bits",
    "unpack_bits",
    "popcount",
    "popcount_total",
    "binary_and_popcount",
    "binary_dot_uint",
    "binary_dot_uint_batch",
    "bitplanes_from_uint",
    "bitplanes_from_uint_batch",
    "pack_level_planes",
    "unpack_level_planes",
    "multibit_dot_uint",
    "hamming_distance",
]
