"""Metric strategy layer: squared-L2, inner-product and cosine serving.

The paper's conclusion (quoted in :mod:`repro.core.similarity`) observes
that the RaBitQ estimator targets one quantity — the inner product of
*unit* vectors — from which squared Euclidean distance, raw inner product
and cosine similarity all derive.  Around a normalization centroid ``c``::

    ||o_r - q_r||^2 = ||o_r - c||^2 + ||q_r - c||^2
                      - 2 ||o_r - c|| ||q_r - c|| <o, q>          (L2)
    <o_r, q_r>      = ||o_r - c|| ||q_r - c|| <o, q>
                      + <o_r, c> + <q_r, c> - ||c||^2             (IP)
    cos(o_r, q_r)   = <o_r, q_r> / (||o_r|| ||q_r||)              (cosine)

This module makes the choice of metric a first-class *strategy* consumed by
every layer of the serving stack: the fused estimation kernels
(:mod:`repro.core.estimator`), IVF probing (:mod:`repro.index.ivf`),
re-ranking (:mod:`repro.index.rerank`), the searcher
(:mod:`repro.index.searcher`), the sharded merge
(:mod:`repro.index.sharded`) and persistence (archive format v4 records
the metric).

Two conventions keep the layers metric-generic:

* **Direction.**  ``higher_is_better`` distinguishes distances (smaller is
  better) from similarities (larger is better).  Selection everywhere runs
  through :meth:`Metric.sort_key`, which returns a *minimization* key —
  the values themselves for L2 (bit-identical to the metric-oblivious
  code) and their negation for similarities (IEEE negation is exact, and
  stable ties still resolve toward the lower index).
* **Score fields.**  Result containers keep their historical field names
  (``distances``, ``lower_bounds``, ``upper_bounds``); under a similarity
  metric they carry similarity scores and their confidence bounds, with
  results ordered by *descending* score.  The optimistic end of the
  confidence interval is the lower bound for L2 and the upper bound for
  similarities (:meth:`Metric.optimistic_bounds`).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import InvalidParameterError


def raw_inner_product_from_unit(
    unit_inner_products: np.ndarray,
    data_to_centroid: np.ndarray,
    query_to_centroid,
    data_dot_centroid: np.ndarray,
    query_dot_centroid,
    centroid_sq_norm,
) -> np.ndarray:
    """Raw inner products from unit-vector inner products (the IP identity).

    ``<o_r, q_r> = ||o_r - c|| ||q_r - c|| <o, q> + <o_r, c> + <q_r, c>
    - ||c||^2`` — the centroid decomposition shared by the flat
    :class:`repro.core.similarity.SimilarityEstimator` and the fused
    arena path in :func:`repro.core.estimator.fused_estimate`.
    """
    scale = np.asarray(data_to_centroid, dtype=np.float64) * query_to_centroid
    offset = (
        np.asarray(data_dot_centroid, dtype=np.float64)
        + query_dot_centroid
        - centroid_sq_norm
    )
    return scale * np.asarray(unit_inner_products, dtype=np.float64) + offset


class Metric(abc.ABC):
    """Strategy describing how one similarity/distance metric is served.

    Concrete metrics are stateless singletons (:data:`L2`, :data:`IP`,
    :data:`COSINE`); resolve user input with :func:`resolve_metric`.

    Attributes
    ----------
    name:
        Stable identifier recorded in archives and benchmark records.
    higher_is_better:
        ``False`` for distances, ``True`` for similarities.
    n_consts:
        Rows of the fused per-code constants matrix this metric needs
        (see :func:`repro.core.estimator.build_code_consts`).
    """

    name: str
    higher_is_better: bool
    n_consts: int

    def sort_key(self, values: np.ndarray) -> np.ndarray:
        """Minimization key: best-first selection runs on this array.

        For L2 this is ``values`` itself (the same array object, keeping
        the historical code path bit-identical); for similarities it is
        ``-values``.
        """
        return -np.asarray(values) if self.higher_is_better else values

    def optimistic_bounds(self, estimate) -> np.ndarray:
        """The confidence-interval end a candidate could *at best* achieve."""
        return (
            estimate.upper_bounds
            if self.higher_is_better
            else estimate.lower_bounds
        )

    @abc.abstractmethod
    def exact_scores(self, data_rows: np.ndarray, query: np.ndarray) -> np.ndarray:
        """Exact metric value between ``query`` and every row of ``data_rows``."""

    @abc.abstractmethod
    def probe_key(
        self,
        centroids: np.ndarray,
        centroid_sq_norms: np.ndarray,
        query: np.ndarray,
    ) -> np.ndarray:
        """Minimization key ranking IVF centroids for probing."""


class _L2Metric(Metric):
    """Squared Euclidean distance (the paper's primary metric)."""

    name = "l2"
    higher_is_better = False
    n_consts = 7  # == repro.core.estimator.N_CONSTS

    def exact_scores(self, data_rows, query):
        # Gather + difference + einsum: exactly the operations the
        # re-ranking hot path has always used (FlatIndex.distances minus
        # the per-call validation), so the L2 path stays bit-identical.
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        diff = data_rows - vec[None, :]
        return np.einsum("ij,ij->i", diff, diff)

    def probe_key(self, centroids, centroid_sq_norms, query):
        # The norm-expansion GEMV kernel of IVFIndex._probe_distances.
        return centroid_sq_norms - 2.0 * (centroids @ query) + query @ query


class _IPMetric(Metric):
    """Raw inner product (maximum-inner-product search)."""

    name = "ip"
    higher_is_better = True
    n_consts = 9  # == repro.core.estimator.N_CONSTS_SIM

    def exact_scores(self, data_rows, query):
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        return data_rows @ vec

    def probe_key(self, centroids, centroid_sq_norms, query):
        return -(centroids @ query)


class _CosineMetric(Metric):
    """Cosine similarity of the raw vectors.

    Zero-norm vectors (data or query) get a cosine of 0, matching
    :meth:`repro.core.similarity.SimilarityEstimator.estimate_cosine`.
    """

    name = "cosine"
    higher_is_better = True
    n_consts = 9  # == repro.core.estimator.N_CONSTS_SIM

    def exact_scores(self, data_rows, query):
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        dots = data_rows @ vec
        norms = np.sqrt(np.einsum("ij,ij->i", data_rows, data_rows))
        denom = norms * float(np.sqrt(np.dot(vec, vec)))
        safe = np.where(denom > 0.0, denom, 1.0)
        return np.where(denom > 0.0, dots / safe, 0.0)

    def probe_key(self, centroids, centroid_sq_norms, query):
        # The query norm is a positive constant across centroids, so the
        # ranking only needs <c, q> / ||c||; zero-norm centroids score 0.
        dots = centroids @ query
        norms = np.sqrt(centroid_sq_norms)
        safe = np.where(norms > 0.0, norms, 1.0)
        return -np.where(norms > 0.0, dots / safe, 0.0)


#: The metric singletons.
L2 = _L2Metric()
IP = _IPMetric()
COSINE = _CosineMetric()

METRICS: dict[str, Metric] = {m.name: m for m in (L2, IP, COSINE)}


def resolve_metric(metric: str | Metric) -> Metric:
    """Resolve a metric name (or pass through a :class:`Metric` instance)."""
    if isinstance(metric, Metric):
        return metric
    resolved = METRICS.get(metric)
    if resolved is None:
        raise InvalidParameterError(
            f"unknown metric {metric!r}; expected one of "
            f"{sorted(METRICS)} or a Metric instance"
        )
    return resolved


__all__ = [
    "Metric",
    "L2",
    "IP",
    "COSINE",
    "METRICS",
    "resolve_metric",
    "raw_inner_product_from_unit",
]
