"""The unbiased inner-product estimator and its error bound (Sec. 3.2).

Given a data vector's quantization code and pre-computed alignment
``<o_bar, o>``, the estimator of the inner product between the unit data
vector ``o`` and the unit query ``q`` is::

    est(<o, q>) = <o_bar, q> / <o_bar, o>

It is unbiased, and with probability at least ``1 - 2 exp(-c0 eps0^2)`` its
error is at most ``sqrt((1 - <o_bar,o>^2) / <o_bar,o>^2) * eps0 / sqrt(D-1)``
(Theorem 3.2).  The squared distance between the raw vectors then follows
from the normalization identity (Eq. 2).

Multi-bit (``B > 1``) codes need one extra error term: their code error
``sqrt(1 - <o_bar,o>^2)`` shrinks towards zero as ``B`` grows, but the
randomized rounding of the *query* to ``B_q`` bits keeps contributing an
error of standard deviation at most ``Δ/2`` to ``<o_bar, q̄>`` (the
per-coordinate rounding errors are independent, zero-mean and bounded by
the step ``Δ``, and ``o_bar`` is a unit vector).  For binary codes the
Theorem 3.2 term dominates and empirically absorbs it — and the ``B = 1``
arithmetic is a bit-identity contract — so the query-rounding term
(``query_rounding = eps0 * Δ/2``, combined in quadrature by
:func:`combined_halfwidth`) is applied to multi-bit codes only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metric import resolve_metric
from repro.core.theory import error_bound_epsilon
from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class DistanceEstimate:
    """Estimated squared distances together with their confidence bounds.

    Attributes
    ----------
    distances:
        Unbiased estimates of the squared Euclidean distances between the
        raw query and each raw data vector.
    lower_bounds:
        Lower ends of the per-vector confidence intervals; used by the
        error-bound-based re-ranking rule of Section 4.
    upper_bounds:
        Upper ends of the per-vector confidence intervals.
    inner_products:
        The underlying estimates of ``<o, q>`` for the unit vectors.
    """

    distances: np.ndarray
    lower_bounds: np.ndarray
    upper_bounds: np.ndarray
    inner_products: np.ndarray

    @property
    def scores(self) -> np.ndarray:
        """Alias of :attr:`distances` for similarity metrics.

        Under ``metric="ip"`` / ``metric="cosine"`` the ``distances`` field
        carries similarity scores (larger is better) and the bounds bracket
        those scores; this alias keeps metric-generic call sites readable.
        """
        return self.distances

    def __len__(self) -> int:
        return int(self.distances.shape[0])


def estimate_inner_product(
    quantized_dot: np.ndarray, alignment: np.ndarray
) -> np.ndarray:
    """Estimate ``<o, q>`` as ``<o_bar, q> / <o_bar, o>`` element-wise.

    Parameters
    ----------
    quantized_dot:
        Values of ``<o_bar, q>`` per data vector.
    alignment:
        Pre-computed values of ``<o_bar, o>`` per data vector.  Entries that
        are zero (possible only for degenerate all-zero inputs) yield an
        estimate of 0.
    """
    dots = np.asarray(quantized_dot, dtype=np.float64)
    align = np.asarray(alignment, dtype=np.float64)
    if dots.shape != align.shape:
        raise InvalidParameterError(
            "quantized_dot and alignment must have the same shape"
        )
    safe = np.where(align != 0.0, align, 1.0)
    est = dots / safe
    return np.where(align != 0.0, est, 0.0)


def confidence_interval_halfwidth(
    alignment: np.ndarray, code_length: int, epsilon0: float
) -> np.ndarray:
    """Vectorized half-width of the estimator's confidence interval (Eq. 16)."""
    align = np.asarray(alignment, dtype=np.float64)
    if code_length < 2:
        raise InvalidParameterError("code_length must be at least 2")
    if epsilon0 < 0.0:
        raise InvalidParameterError("epsilon0 must be non-negative")
    safe = np.where(align != 0.0, align, 1.0)
    ratio = np.clip(1.0 - align**2, 0.0, None) / (safe**2)
    halfwidth = np.sqrt(ratio) * epsilon0 / np.sqrt(code_length - 1)
    return np.where(align != 0.0, halfwidth, np.inf)


def combined_halfwidth(
    halfwidth: np.ndarray, safe_alignment: np.ndarray, query_rounding
) -> np.ndarray:
    """Quadrature sum of the code half-width and the query-rounding term.

    ``query_rounding`` is ``eps0 * Δ/2`` — the confidence multiple of the
    randomized-rounding error's standard-deviation bound on ``<o_bar, q̄>``
    (scalar for one query, an ``(n_queries, 1)`` column for a batch).  The
    estimator divides the quantized dot by the alignment, so the term is
    scaled by ``1 / |alignment|`` before the quadrature combine; degenerate
    codes (alignment 0) keep their infinite half-width.

    Every caller — the reference estimators, the fused arena kernel and the
    flat similarity estimator — combines through this one function so
    multi-bit bounds stay bit-identical across the serving paths.
    """
    extra = query_rounding / np.abs(safe_alignment)
    return np.sqrt(halfwidth * halfwidth + extra * extra)


def inner_product_to_squared_distance(
    inner_products: np.ndarray,
    data_to_centroid: np.ndarray,
    query_to_centroid: float,
) -> np.ndarray:
    """Convert unit-vector inner products into raw squared distances (Eq. 2).

    ``||o_r - q_r||^2 = ||o_r - c||^2 + ||q_r - c||^2
    - 2 ||o_r - c|| ||q_r - c|| <o, q>``.
    """
    ips = np.asarray(inner_products, dtype=np.float64)
    data_norms = np.asarray(data_to_centroid, dtype=np.float64)
    if ips.shape != data_norms.shape:
        raise InvalidParameterError(
            "inner_products and data_to_centroid must have the same shape"
        )
    query_norm = float(query_to_centroid)
    if query_norm < 0.0:
        raise InvalidParameterError("query_to_centroid must be non-negative")
    # Squares are spelled as multiplications, not ``**``: Python's float pow
    # goes through libm and can differ from an IEEE multiply by 1 ULP, which
    # would break the bit-identity between this path and the batched one.
    return (
        data_norms * data_norms
        + query_norm * query_norm
        - 2.0 * data_norms * query_norm * ips
    )


def estimate_distances(
    quantized_dot: np.ndarray,
    alignment: np.ndarray,
    data_to_centroid: np.ndarray,
    query_to_centroid: float,
    code_length: int,
    epsilon0: float,
    *,
    query_rounding: float | None = None,
) -> DistanceEstimate:
    """Full estimation pipeline: inner products, distances and bounds.

    This is the vectorized core of Algorithm 2 (lines 3-5): every input is a
    per-data-vector array and the output carries the distance estimates plus
    the confidence intervals needed by the re-ranking rule.

    ``query_rounding`` (``eps0 * Δ/2``, multi-bit codes only) widens the
    intervals by the query-rounding error via :func:`combined_halfwidth`;
    ``None`` (binary codes) keeps the historical Eq. 16 half-width.

    Notes
    -----
    Because the inner-product error is symmetric around the true value, the
    *lower* bound of the squared distance corresponds to the *upper* bound
    of the inner product (larger inner product means closer vectors).
    """
    ips = estimate_inner_product(quantized_dot, alignment)
    halfwidth = confidence_interval_halfwidth(alignment, code_length, epsilon0)
    if query_rounding is not None:
        align = np.asarray(alignment, dtype=np.float64)
        safe = np.where(align != 0.0, align, 1.0)
        halfwidth = combined_halfwidth(halfwidth, safe, query_rounding)

    distances = inner_product_to_squared_distance(
        ips, data_to_centroid, query_to_centroid
    )
    # Inner products of unit vectors lie in [-1, 1]; capping the interval
    # endpoints at that range (while never crossing the point estimate, which
    # may drift slightly outside it due to query quantization) keeps the
    # bounds finite even for degenerate vectors whose alignment is zero
    # (infinite half-width).
    ip_upper = np.minimum(ips + halfwidth, np.maximum(1.0, ips))
    ip_lower = np.maximum(ips - halfwidth, np.minimum(-1.0, ips))
    lower_bounds = inner_product_to_squared_distance(
        ip_upper, data_to_centroid, query_to_centroid
    )
    upper_bounds = inner_product_to_squared_distance(
        ip_lower, data_to_centroid, query_to_centroid
    )
    np.maximum(distances, 0.0, out=distances)
    np.maximum(lower_bounds, 0.0, out=lower_bounds)
    np.maximum(upper_bounds, 0.0, out=upper_bounds)
    return DistanceEstimate(
        distances=distances,
        lower_bounds=lower_bounds,
        upper_bounds=upper_bounds,
        inner_products=ips,
    )


def estimate_distances_batch(
    quantized_dot: np.ndarray,
    alignment: np.ndarray,
    data_to_centroid: np.ndarray,
    query_to_centroid: np.ndarray,
    code_length: int,
    epsilon0: float,
    *,
    query_rounding: np.ndarray | None = None,
) -> DistanceEstimate:
    """Batched variant of :func:`estimate_distances` for a query *matrix*.

    Parameters
    ----------
    quantized_dot:
        ``<o_bar, q>`` per (query, data vector), shape
        ``(n_queries, n_codes)``.
    alignment / data_to_centroid:
        Per-data-vector arrays of shape ``(n_codes,)``, shared by all
        queries.
    query_to_centroid:
        Per-query norms ``||q_r - c||``, shape ``(n_queries,)``.
    code_length / epsilon0:
        As in :func:`estimate_distances`.
    query_rounding:
        Per-query ``eps0 * Δ/2`` column of shape ``(n_queries, 1)``
        (multi-bit codes only), or ``None`` for the historical half-width.

    Returns
    -------
    DistanceEstimate
        All four fields have shape ``(n_queries, n_codes)``; row ``i``
        is bit-identical to ``estimate_distances(quantized_dot[i], ...,
        float(query_to_centroid[i]), ...)`` because every operation is the
        same elementwise arithmetic, merely broadcast across queries.
    """
    dots = np.asarray(quantized_dot, dtype=np.float64)
    align = np.asarray(alignment, dtype=np.float64)
    data_norms = np.asarray(data_to_centroid, dtype=np.float64)
    query_norms = np.asarray(query_to_centroid, dtype=np.float64)
    if dots.ndim != 2:
        raise InvalidParameterError("quantized_dot must be 2-D (queries x codes)")
    if align.shape != (dots.shape[1],) or data_norms.shape != (dots.shape[1],):
        raise InvalidParameterError(
            "alignment and data_to_centroid must have shape (n_codes,)"
        )
    if query_norms.shape != (dots.shape[0],):
        raise InvalidParameterError("query_to_centroid must have shape (n_queries,)")
    if (query_norms < 0.0).any():
        raise InvalidParameterError("query_to_centroid must be non-negative")

    safe = np.where(align != 0.0, align, 1.0)
    ips = np.where(align != 0.0, dots / safe, 0.0)
    halfwidth = confidence_interval_halfwidth(align, code_length, epsilon0)
    if query_rounding is not None:
        halfwidth = combined_halfwidth(halfwidth, safe, query_rounding)

    dn = data_norms[None, :]
    qn = query_norms[:, None]
    # Multiplication (not ``**``) mirrors inner_product_to_squared_distance
    # exactly — see the note there about libm pow vs IEEE multiply.
    dn_sq = dn * dn
    qn_sq = qn * qn
    distances = dn_sq + qn_sq - 2.0 * dn * qn * ips
    ip_upper = np.minimum(ips + halfwidth, np.maximum(1.0, ips))
    ip_lower = np.maximum(ips - halfwidth, np.minimum(-1.0, ips))
    lower_bounds = dn_sq + qn_sq - 2.0 * dn * qn * ip_upper
    upper_bounds = dn_sq + qn_sq - 2.0 * dn * qn * ip_lower
    np.maximum(distances, 0.0, out=distances)
    np.maximum(lower_bounds, 0.0, out=lower_bounds)
    np.maximum(upper_bounds, 0.0, out=upper_bounds)
    return DistanceEstimate(
        distances=distances,
        lower_bounds=lower_bounds,
        upper_bounds=upper_bounds,
        inner_products=ips,
    )


# --------------------------------------------------------------------- #
# Fused estimation kernels (code-arena hot path)
# --------------------------------------------------------------------- #
#
# The arena-backed search path stores, for every encoded vector, a column of
# pre-computed estimator constants so that query-time estimation reduces to
# one integer inner-product pass plus one vectorized affine transform.  Each
# constant is pre-computed with the *same elementwise operation* the
# reference functions above would apply at query time, so fused results are
# bit-identical to :func:`estimate_distances` /
# :func:`estimate_distances_batch`.

#: Row indices of the fused per-code constants matrix (``N_CONSTS`` rows,
#: one column per code).  Stored constants-major so each constant's slice
#: over a contiguous code range is itself contiguous.
CONST_NORM = 0  #: ``||o_r - c||``
CONST_NORM_SQ = 1  #: ``norm * norm`` (the estimator's ``dn * dn``)
CONST_TWO_NORM = 2  #: ``2.0 * norm`` (the estimator's ``2.0 * dn``)
CONST_ALIGN = 3  #: ``<o_bar, o>``
CONST_SAFE_ALIGN = 4  #: ``align`` with zeros replaced by 1 (division guard)
CONST_HALFWIDTH = 5  #: confidence-interval half-width for the config epsilon0
CONST_POPCOUNT = 6  #: ``popcount(x_b)`` as float64 (Eq. 20 affine term)
N_CONSTS = 7

#: Similarity metrics (``ip`` / ``cosine``) extend the matrix with the
#: centroid-decomposition terms of :mod:`repro.core.metric`.
CONST_DOT_C = 7  #: ``<o_r, c>`` — raw data vector dot normalization centroid
CONST_RAW_NORM = 8  #: ``||o_r||`` — raw data-vector norm (cosine denominator)
N_CONSTS_SIM = 9

# Multi-bit (B > 1) codes append one more row *after* the metric's rows:
# the per-code rescale factor ``1 / ||v||`` of the level vector
# ``v = 2u - (2^B - 1)``.  It is always the last row of the matrix
# (``consts[-1]``), for any metric; B = 1 matrices never carry it, keeping
# the historical layout bit-identical.


def n_consts_for(metric) -> int:
    """Fused-constants rows required by ``metric`` (name or instance)."""
    return resolve_metric(metric).n_consts


def build_code_consts(
    alignments: np.ndarray,
    norms: np.ndarray,
    code_popcounts: np.ndarray,
    code_length: int,
    epsilon0: float,
    *,
    metric="l2",
    dot_centroid: np.ndarray | None = None,
    raw_norms: np.ndarray | None = None,
) -> np.ndarray:
    """Fused per-code estimator constants, shape ``(n_consts, n_codes)``.

    Every row is computed with the exact operation the reference estimator
    applies at query time (e.g. ``norm * norm``, not ``norm ** 2``), so
    consuming these constants in :func:`fused_estimate` reproduces
    :func:`estimate_distances` bit for bit.

    For ``metric="l2"`` (the default) the matrix has the historical
    ``N_CONSTS`` rows and is bit-identical to the metric-oblivious layout.
    Similarity metrics append the centroid-decomposition rows
    (``CONST_DOT_C`` = ``<o_r, c>``, ``CONST_RAW_NORM`` = ``||o_r||``),
    which must then be supplied via ``dot_centroid`` / ``raw_norms``.
    """
    resolved = resolve_metric(metric)
    align = np.asarray(alignments, dtype=np.float64).reshape(-1)
    data_norms = np.asarray(norms, dtype=np.float64).reshape(-1)
    pops = np.asarray(code_popcounts).reshape(-1)
    if align.shape != data_norms.shape or align.shape != pops.shape:
        raise InvalidParameterError(
            "alignments, norms and code_popcounts must have the same length"
        )
    consts = np.empty((resolved.n_consts, align.shape[0]), dtype=np.float64)
    consts[CONST_NORM] = data_norms
    consts[CONST_NORM_SQ] = data_norms * data_norms
    consts[CONST_TWO_NORM] = 2.0 * data_norms
    consts[CONST_ALIGN] = align
    consts[CONST_SAFE_ALIGN] = np.where(align != 0.0, align, 1.0)
    consts[CONST_HALFWIDTH] = confidence_interval_halfwidth(
        align, code_length, epsilon0
    )
    consts[CONST_POPCOUNT] = pops.astype(np.float64)
    if resolved.n_consts > N_CONSTS:
        if dot_centroid is None or raw_norms is None:
            raise InvalidParameterError(
                f"metric {resolved.name!r} requires dot_centroid and "
                f"raw_norms per code"
            )
        dot_c = np.asarray(dot_centroid, dtype=np.float64).reshape(-1)
        raw = np.asarray(raw_norms, dtype=np.float64).reshape(-1)
        if dot_c.shape != align.shape or raw.shape != align.shape:
            raise InvalidParameterError(
                "dot_centroid and raw_norms must have one entry per code"
            )
        consts[CONST_DOT_C] = dot_c
        consts[CONST_RAW_NORM] = raw
    return consts


def undo_query_quantization(
    integer_dot: np.ndarray,
    popcounts: np.ndarray,
    delta,
    lower,
    sum_codes,
    code_length: int,
) -> np.ndarray:
    """Affine undo of the scalar query quantization (Eq. 19-20).

    ``<x_bar, q_bar> = 2Δ/√D <x_b, q_u> + 2 v_l/√D popcount(x_b)
    - Δ/√D Σ q_u - √D v_l``, with the exact operation order of the
    single-query path in :class:`repro.core.quantizer.RaBitQ`.  Scalars give
    the sequential form; per-query ``(n_queries, 1)`` arrays (with a 2-D
    ``integer_dot`` and ``popcounts[None, :]``) give the batched form — the
    broadcasting changes nothing elementwise.

    Every estimation kernel feeds this transform the same way: the GEMM,
    popcount and 4-bit LUT paths produce the identical exact integer
    ``<x_b, q_u>`` (so their outputs here are bit-identical), and the
    ``lut8`` path passes its reduced-precision float accumulation through
    unchanged — the elementwise op order holds for arbitrary float input,
    keeping ``lut8`` batch ≡ sequential as well.
    """
    sqrt_d = np.sqrt(float(code_length))
    dot_f = np.asarray(integer_dot, dtype=np.float64)
    return (
        2.0 * delta / sqrt_d * dot_f
        + 2.0 * lower / sqrt_d * popcounts
        - delta / sqrt_d * sum_codes
        - sqrt_d * lower
    )


def undo_query_quantization_multibit(
    integer_dot: np.ndarray,
    level_sums: np.ndarray,
    rescales: np.ndarray,
    delta,
    lower,
    sum_codes,
    code_length: int,
    bits: int,
) -> np.ndarray:
    """Affine undo of the query quantization for multi-bit (B > 1) codes.

    The multi-bit code of a vector is the level vector ``u`` with ``u_j in
    [0, 2^B - 1]``; the reconstructed unit vector is ``x_bar = r * v`` with
    ``v = 2u - (2^B - 1) * 1`` and ``r = 1 / ||v||``.  With the quantized
    query ``q_bar = Δ q_u + v_l * 1`` this gives::

        <x_bar, q_bar> = r * (2Δ <u, q_u> + 2 v_l Σu
                              - (2^B - 1) (Δ Σq_u + v_l D))

    where ``<u, q_u>`` is the exact integer dot the GEMM / plane-popcount
    kernels produce, ``Σu`` (``level_sums``) and ``r`` (``rescales``) are
    per-code constants, and ``Σq_u`` / ``Δ`` / ``v_l`` are per-query.
    Scalars give the sequential form; per-query ``(n_queries, 1)`` columns
    (with 2-D ``integer_dot`` and ``level_sums[None, :]`` /
    ``rescales[None, :]``) give the batched form — broadcasting changes
    nothing elementwise, so batch and sequential results are bit-identical.
    """
    levels = float((1 << bits) - 1)
    dot_f = np.asarray(integer_dot, dtype=np.float64)
    return np.asarray(rescales, dtype=np.float64) * (
        2.0 * delta * dot_f
        + 2.0 * lower * level_sums
        - levels * (delta * sum_codes + lower * float(code_length))
    )


def fused_estimate(
    quantized_dot: np.ndarray,
    consts: np.ndarray,
    query_norms,
    *,
    metric="l2",
    query_offset=None,
    query_raw_norm=None,
    query_rounding=None,
) -> DistanceEstimate:
    """Metric estimates + bounds from fused per-code constants.

    Parameters
    ----------
    quantized_dot:
        ``<o_bar, q>`` per code — ``(n,)`` for one query (or a flat
        multi-cluster candidate set) or ``(n_queries, n)`` for a batch.
    consts:
        Output of :func:`build_code_consts` for exactly those ``n`` codes
        (columns aligned with ``quantized_dot``'s last axis), built for the
        same ``metric``.
    query_norms:
        ``||q_r - c||`` — a scalar, an ``(n,)`` per-candidate array (flat
        layout spanning clusters with different centroids), or an
        ``(n_queries, 1)`` column for the batch form.
    metric:
        ``"l2"`` (default, the historical bit-identical path), ``"ip"`` or
        ``"cosine"``.
    query_offset:
        Similarity metrics only: ``<q_r, c> - ||c||^2`` per probed cluster
        — a scalar, an ``(n,)`` per-candidate array or an
        ``(n_queries, 1)`` column, broadcast like ``query_norms``.
    query_raw_norm:
        Cosine only: the raw query norm ``||q_r||`` (scalar or
        ``(n_queries, 1)`` column).
    query_rounding:
        Multi-bit codes only: ``eps0 * Δ/2`` per query (scalar or
        ``(n_queries, 1)`` column), combined into the half-width exactly
        as the reference estimators do; ``None`` for binary codes.

    Returns
    -------
    DistanceEstimate
        For L2: bit-identical to :func:`estimate_distances` (respectively
        :func:`estimate_distances_batch`) on the same inputs — every step
        is the same elementwise arithmetic, with the query-independent
        factors read from ``consts`` instead of recomputed.  For ``ip`` /
        ``cosine`` the ``distances`` field carries similarity *scores*
        (larger is better) derived through the centroid decomposition of
        :mod:`repro.core.metric`, with ``lower_bounds`` / ``upper_bounds``
        bracketing them; cosine scores and bounds are clipped to
        ``[-1, 1]`` and degenerate (zero-norm) pairs score 0, matching
        :class:`repro.core.similarity.SimilarityEstimator`.
    """
    resolved = resolve_metric(metric)
    dots = np.asarray(quantized_dot, dtype=np.float64)
    # Multi-bit codes append one rescale row after the metric's rows (see
    # the layout note above); it is consumed upstream, so this kernel only
    # requires the metric's rows to be present.
    if consts.ndim != 2 or consts.shape[0] not in (
        resolved.n_consts,
        resolved.n_consts + 1,
    ):
        raise InvalidParameterError(
            f"consts must have shape ({resolved.n_consts}, n_codes) for "
            f"metric {resolved.name!r} (plus one rescale row for multi-bit "
            f"codes)"
        )
    if dots.shape[-1] != consts.shape[1]:
        raise InvalidParameterError(
            "quantized_dot and consts disagree on the number of codes"
        )
    align = consts[CONST_ALIGN]
    ips = np.where(align != 0.0, dots / consts[CONST_SAFE_ALIGN], 0.0)
    halfwidth = consts[CONST_HALFWIDTH]
    if query_rounding is not None:
        halfwidth = combined_halfwidth(
            halfwidth, consts[CONST_SAFE_ALIGN], query_rounding
        )
    qn = query_norms
    ip_upper = np.minimum(ips + halfwidth, np.maximum(1.0, ips))
    ip_lower = np.maximum(ips - halfwidth, np.minimum(-1.0, ips))

    if resolved.name == "l2":
        dn_sq = consts[CONST_NORM_SQ]
        two_dn = consts[CONST_TWO_NORM]
        qn_sq = qn * qn
        distances = dn_sq + qn_sq - two_dn * qn * ips
        lower_bounds = dn_sq + qn_sq - two_dn * qn * ip_upper
        upper_bounds = dn_sq + qn_sq - two_dn * qn * ip_lower
        np.maximum(distances, 0.0, out=distances)
        np.maximum(lower_bounds, 0.0, out=lower_bounds)
        np.maximum(upper_bounds, 0.0, out=upper_bounds)
        return DistanceEstimate(
            distances=distances,
            lower_bounds=lower_bounds,
            upper_bounds=upper_bounds,
            inner_products=ips,
        )

    if query_offset is None:
        raise InvalidParameterError(
            f"metric {resolved.name!r} requires query_offset "
            f"(<q_r, c> - ||c||^2 per probed cluster)"
        )
    # Raw inner product via the centroid decomposition: the larger unit
    # inner product gives the larger raw inner product (scale >= 0).
    scale = consts[CONST_NORM] * qn
    offset = consts[CONST_DOT_C] + query_offset
    values = scale * ips + offset
    lower_bounds = scale * ip_lower + offset
    upper_bounds = scale * ip_upper + offset
    if resolved.name == "cosine":
        if query_raw_norm is None:
            raise InvalidParameterError(
                "metric 'cosine' requires query_raw_norm (the raw ||q_r||)"
            )
        denom = consts[CONST_RAW_NORM] * query_raw_norm
        positive = denom > 0.0
        safe = np.where(positive, denom, 1.0)
        values = np.where(positive, values / safe, 0.0)
        lower_bounds = np.where(positive, lower_bounds / safe, 0.0)
        upper_bounds = np.where(positive, upper_bounds / safe, 0.0)
        np.clip(values, -1.0, 1.0, out=values)
        np.clip(lower_bounds, -1.0, 1.0, out=lower_bounds)
        np.clip(upper_bounds, -1.0, 1.0, out=upper_bounds)
    return DistanceEstimate(
        distances=values,
        lower_bounds=lower_bounds,
        upper_bounds=upper_bounds,
        inner_products=ips,
    )


def naive_inner_product_estimate(quantized_dot: np.ndarray) -> np.ndarray:
    """The biased "treat the quantized vector as the data vector" estimator.

    This is the ``<o_bar, q>`` estimator ablated in Appendix F.2; it is kept
    here so that the ablation experiment and tests can compare both.
    """
    return np.asarray(quantized_dot, dtype=np.float64).copy()


def per_vector_error_bound(
    alignment: np.ndarray, code_length: int, epsilon0: float
) -> np.ndarray:
    """Alias of :func:`confidence_interval_halfwidth` with a scalar fallback."""
    result = confidence_interval_halfwidth(
        np.atleast_1d(alignment), code_length, epsilon0
    )
    return result


def theoretical_halfwidth_scalar(
    alignment: float, code_length: int, epsilon0: float
) -> float:
    """Scalar convenience wrapper mirroring :func:`error_bound_epsilon`."""
    return error_bound_epsilon(alignment, code_length, epsilon0)


__all__ = [
    "DistanceEstimate",
    "CONST_NORM",
    "CONST_NORM_SQ",
    "CONST_TWO_NORM",
    "CONST_ALIGN",
    "CONST_SAFE_ALIGN",
    "CONST_HALFWIDTH",
    "CONST_POPCOUNT",
    "N_CONSTS",
    "CONST_DOT_C",
    "CONST_RAW_NORM",
    "N_CONSTS_SIM",
    "n_consts_for",
    "build_code_consts",
    "undo_query_quantization",
    "undo_query_quantization_multibit",
    "fused_estimate",
    "estimate_inner_product",
    "confidence_interval_halfwidth",
    "inner_product_to_squared_distance",
    "estimate_distances",
    "estimate_distances_batch",
    "naive_inner_product_estimate",
    "per_vector_error_bound",
    "theoretical_halfwidth_scalar",
]
