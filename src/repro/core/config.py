"""Configuration object for the RaBitQ quantizer.

The paper fixes its two knobs across all datasets (Sec. 5.1): the confidence
parameter ``epsilon_0 = 1.9`` and the query-quantization bit width
``B_q = 4``.  The quantization-code length defaults to the smallest multiple
of 64 that is at least ``D`` (zero padding, Sec. 5.1 "Parameter Setting").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.exceptions import InvalidParameterError

#: Default confidence parameter; the paper uses 1.9 across all datasets.
DEFAULT_EPSILON0 = 1.9

#: Default number of bits for the quantized query; the paper uses 4.
DEFAULT_QUERY_BITS = 4

#: Codes are padded to a multiple of this many bits so that they can be
#: stored as a sequence of 64-bit words (paper Sec. 5.1).
CODE_ALIGNMENT_BITS = 64

#: Supported per-dimension code widths ``B``.  ``1`` is the paper's binary
#: construction; the larger widths follow the extended (multi-bit) RaBitQ
#: generalization, with power-of-two widths so codes pack into bit-planes.
SUPPORTED_CODE_BITS = (1, 2, 4, 8)


def padded_code_length(dim: int, *, alignment: int = CODE_ALIGNMENT_BITS) -> int:
    """Smallest multiple of ``alignment`` that is at least ``dim``."""
    if dim <= 0:
        raise InvalidParameterError("dim must be positive")
    if alignment <= 0:
        raise InvalidParameterError("alignment must be positive")
    return ((dim + alignment - 1) // alignment) * alignment


@dataclass(frozen=True)
class RaBitQConfig:
    """Hyper-parameters of the RaBitQ quantizer.

    Attributes
    ----------
    epsilon0:
        Confidence parameter of the error bound (paper's ``epsilon_0``).
        Controls the width of the confidence interval used by the
        error-bound-based re-ranking.
    query_bits:
        Number of bits ``B_q`` used by the randomized uniform scalar
        quantization of the rotated query vector.
    code_length:
        Length of the quantization code in bits.  ``None`` means "the
        smallest multiple of 64 that is >= D", resolved at fit time.
    randomized_rounding:
        Whether the query scalar quantization uses randomized rounding
        (required for the theoretical guarantee; Sec. 3.3.1).  Disabling it
        is exposed only for the ablation study.
    rotation:
        Which rotation implementation to use: ``"qr"`` for a dense random
        orthogonal matrix obtained from a QR factorization, or
        ``"hadamard"`` for the structured fast-Hadamard-style rotation.
    seed:
        Seed for the rotation matrix and randomized rounding.  ``None``
        draws fresh entropy.
    bits:
        Bits per dimension ``B`` of the data codes.  ``1`` (default) is the
        paper's binary RaBitQ; ``2``/``4``/``8`` layer scalar-quantized
        residual magnitudes over the sign bits (the extended multi-bit
        construction), trading space for estimation accuracy.
    """

    epsilon0: float = DEFAULT_EPSILON0
    query_bits: int = DEFAULT_QUERY_BITS
    code_length: Optional[int] = None
    randomized_rounding: bool = True
    rotation: str = "qr"
    seed: Optional[int] = field(default=None)
    bits: int = 1

    def __post_init__(self) -> None:
        if self.epsilon0 < 0.0:
            raise InvalidParameterError("epsilon0 must be non-negative")
        if not 1 <= int(self.query_bits) <= 16:
            raise InvalidParameterError("query_bits must lie in [1, 16]")
        if int(self.bits) not in SUPPORTED_CODE_BITS:
            raise InvalidParameterError(
                f"bits must be one of {SUPPORTED_CODE_BITS}, got {self.bits!r}"
            )
        if self.code_length is not None and self.code_length <= 0:
            raise InvalidParameterError("code_length must be positive when given")
        if self.rotation not in ("qr", "hadamard"):
            raise InvalidParameterError(
                f"rotation must be 'qr' or 'hadamard', got {self.rotation!r}"
            )

    def resolve_code_length(self, dim: int) -> int:
        """Return the concrete code length for data of dimension ``dim``.

        The resolved length is never smaller than ``dim`` (padding only adds
        zeros, it never truncates) and is rounded up to a multiple of 64.
        """
        if self.code_length is None:
            return padded_code_length(dim)
        if self.code_length < dim:
            raise InvalidParameterError(
                f"code_length={self.code_length} is smaller than the data "
                f"dimension {dim}; RaBitQ only supports padding, not truncation"
            )
        return padded_code_length(self.code_length)

    def with_overrides(self, **kwargs) -> "RaBitQConfig":
        """Return a copy of the config with the given fields replaced."""
        return replace(self, **kwargs)


__all__ = [
    "RaBitQConfig",
    "DEFAULT_EPSILON0",
    "DEFAULT_QUERY_BITS",
    "CODE_ALIGNMENT_BITS",
    "SUPPORTED_CODE_BITS",
    "padded_code_length",
]
