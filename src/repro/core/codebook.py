"""The conceptual RaBitQ codebook and bit-string code conversions.

The codebook is the set of ``2^D`` bi-valued vectors whose coordinates are
``±1/sqrt(D)`` (the vertices of a hypercube inscribed in the unit sphere),
randomly rotated.  As in the paper, the codebook is never materialized; a
quantization code is just the sign pattern of the inversely rotated data
vector, stored as a ``D``-bit string.

This module provides the conversions between the three representations used
across the library:

* ``signed``  — vectors with entries ``±1/sqrt(code_length)`` (the vector
  ``x̄`` of the paper),
* ``bits``    — 0/1 arrays (``x̄_b`` of the paper),
* ``packed``  — ``uint64``-packed bit strings (storage format).
"""

from __future__ import annotations

import numpy as np

from repro.core.bitops import pack_bits, unpack_bits
from repro.exceptions import InvalidParameterError


def signed_to_bits(signed: np.ndarray) -> np.ndarray:
    """Convert sign patterns to 0/1 bit arrays.

    Positive (and zero) entries map to 1, strictly negative entries to 0.
    Mapping zero to 1 is an arbitrary but fixed tie-breaking rule; ties occur
    only on padded dimensions and measure-zero inputs.
    """
    arr = np.asarray(signed, dtype=np.float64)
    return (arr >= 0.0).astype(np.uint8)


def bits_to_signed(bits: np.ndarray, code_length: int | None = None) -> np.ndarray:
    """Convert 0/1 bit arrays into bi-valued vectors ``±1/sqrt(code_length)``.

    This is the map ``x̄ = (2 x̄_b - 1) / sqrt(D)`` from Sec. 3.1.3.
    ``code_length`` defaults to the trailing dimension of ``bits``.
    """
    arr = np.asarray(bits, dtype=np.float64)
    if code_length is None:
        code_length = arr.shape[-1]
    if code_length <= 0:
        raise InvalidParameterError("code_length must be positive")
    return (2.0 * arr - 1.0) / np.sqrt(float(code_length))


def encode_signs(rotated_vectors: np.ndarray) -> np.ndarray:
    """Quantization codes (packed) for already inversely-rotated vectors.

    Given ``P^-1 o`` for each (unit, padded) data vector ``o``, the nearest
    codebook vector is the one whose signs match (Eq. 8), so the code is
    simply the packed sign pattern.
    """
    bits = signed_to_bits(rotated_vectors)
    return pack_bits(bits)


def decode_codes(packed_codes: np.ndarray, code_length: int) -> np.ndarray:
    """Reconstruct bi-valued vectors ``x̄`` from packed codes."""
    bits = unpack_bits(packed_codes, code_length)
    return bits_to_signed(bits, code_length)


def codes_to_matrix(
    packed_codes: np.ndarray, code_length: int, rotation=None
) -> np.ndarray:
    """Reconstruct quantized vectors, optionally rotated back to data space.

    Without ``rotation`` this returns ``x̄`` (codebook frame); with a
    :class:`repro.core.rotation.Rotation` it returns ``ō = P x̄``.
    """
    signed = decode_codes(packed_codes, code_length)
    if rotation is None:
        return signed
    return rotation.apply(signed)


def code_popcounts(bits: np.ndarray) -> np.ndarray:
    """Number of 1s per code (the pre-computed ``sum_i x̄_b[i]`` of Eq. 20)."""
    arr = np.asarray(bits)
    return arr.astype(np.int64).sum(axis=-1)


__all__ = [
    "signed_to_bits",
    "bits_to_signed",
    "encode_signs",
    "decode_codes",
    "codes_to_matrix",
    "code_popcounts",
]
