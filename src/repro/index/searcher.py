"""IVF + quantizer ANN search pipelines (Section 4 of the paper).

:class:`IVFQuantizedSearcher` couples the IVF coarse index with a quantizer
and a re-ranking strategy:

* **IVF-RaBitQ** — RaBitQ codes encoded per cluster (each cluster's centroid
  is the normalization centroid, all clusters share one rotation) and stored
  in a single contiguous :class:`repro.index.arena.CodeArena`; candidates
  are re-ranked with the error-bound rule (no tuning).
* **IVF-PQ / IVF-OPQ** — a PQ or OPQ quantizer trained globally; candidates
  are re-ranked with a fixed candidate count (the paper sweeps 500 / 1000 /
  2500).

**Metric-generic serving.**  The searcher serves squared-L2 (default),
inner-product (MIPS) or cosine traffic via the ``metric=`` constructor
argument (:mod:`repro.core.metric`).  The metric threads through the whole
stack: IVF probing ranks centroids by the metric, the fused estimator
derives metric values and confidence bounds from the same per-code factors
(plus, for similarities, centroid-decomposition constants stored alongside
them in the arena), re-ranking flips to maximization with the suffix
extremum of the optimistic bounds, and results are ordered best-first
(ascending distance / descending score).  The ``metric="l2"`` path is
bit-identical to the historical metric-oblivious implementation
(``tests/test_l2_stream_gate.py`` pins archived result streams).

Two query entry points are provided:

* :meth:`IVFQuantizedSearcher.search` — one query at a time, returning a
  :class:`SearchResult` with the retrieved ids, their distances, and cost
  counters (number of estimated distances and of exact re-ranking
  computations) so the benchmark harness can report both accuracy and work.
* :meth:`IVFQuantizedSearcher.search_batch` — the vectorized batch engine.
  IVF probing runs once for the whole query matrix, queries are grouped by
  probed cluster so each cluster's code block is scanned once per query
  group, and re-ranking runs per query on the assembled estimates.  The
  returned :class:`BatchSearchResult` carries per-query results plus
  aggregate cost counters, and is guaranteed to be element-wise identical
  (ids *and* distances) to running :meth:`search` in a loop — batching
  changes throughput, never answers.

**Hot-path layout.**  Quantized codes live in a contiguous, cluster-grouped
code arena: one packed ``uint64`` code matrix, one unpacked 0/1 ``uint8``
matrix (the operand of the integer-exact GEMM estimation kernel), and one
fused matrix of per-code estimator constants (norms, ``<o_bar, o>``
correction terms, error-bound half-widths, popcounts — see
:func:`repro.core.estimator.build_code_consts`).  Probing ``nprobe``
clusters yields contiguous array slices; distances and bounds for the whole
candidate set are produced by one integer inner-product pass plus one fused
affine transform (:func:`repro.core.estimator.fused_estimate`), written
straight into a preallocated per-searcher scratch-buffer pool — no
per-cluster ``DistanceEstimate`` blocks and no per-query concatenation or
temporaries.  The integer pass is a float64 GEMM/GEMV on the unpacked
codes, which is *exact* (bits are 0/1 and quantized query coordinates fit
in 16 bits, so every partial sum is an integer far below 2^53), hence
bit-identical to the packed popcount kernel.

Per-cluster query preparation (normalize to the cluster centroid, rotate,
randomized-rounding quantization against the cluster's private rounding
stream) keeps the exact arithmetic of the pre-arena implementation, so
search results are bit-identical to the former per-cluster-quantizer code —
the equivalence suite in ``tests/test_arena_equivalence.py`` checks this
against a literal port of that implementation.  Optionally, prepared
queries can be memoized per ``(query bytes, cluster)`` with a FIFO eviction
cap (``query_cache_size``): repeated identical queries — common in
benchmark loops and dedup-heavy traffic — then skip re-preparation entirely
and consume no randomness.  The cache is off by default because replaying a
query *without* consuming the rounding stream changes how later draws line
up compared to an uncached searcher (results remain valid estimates, and
batch ≡ sequential still holds exactly: the batch path simulates the
sequential cache bookkeeping, including FIFO evictions).

**Cache invalidation guarantee.**  Every mutation — :meth:`fit`,
:meth:`insert`, :meth:`delete`, :meth:`compact` (including automatic
compactions triggered by ``compact_threshold``) — clears the prepared-query
cache.  Cached per-cluster query state therefore never crosses a change of
the indexed set: at every mutation boundary a cached searcher re-prepares
its next queries exactly as an uncached searcher with the same stream
history would, so the two stay bit-identical as long as no query repeats
*between* mutations.  (Previously only ``fit`` cleared the cache, so
entries keyed by cluster id survived ``insert``/``delete``/``compact`` and
replayed stale pre-mutation preparation state — the regression is pinned in
``tests/test_query_cache.py``.)  A searcher reloaded via
:func:`repro.io.persistence.load_searcher` likewise starts with a cold
cache.

**Thread safety.**  ``search`` and ``search_batch`` may be called
concurrently from several threads on one fitted searcher: scratch buffers
and the rotation pad are thread-local, probing reads an eagerly computed
centroid-norm cache, and mutation methods are the only writers of index
state (mutations must not run concurrently with queries or each other).
Concurrent queries are additionally *bit-identical to any serial execution
order* when query preparation is deterministic — ``randomized_rounding=
False`` and ``query_cache_size=0`` — because preparation then neither
consumes per-cluster rounding streams nor mutates the cache, making every
query a pure read.  With randomized rounding (the paper's default) or the
cache enabled, concurrent calls remain memory-safe (NumPy generators
serialize their draws internally) but the per-cluster stream consumption
order depends on scheduling, so results are valid estimates yet not
reproducible run-to-run; wrap queries in an external lock — or use one
:class:`repro.index.sharded.ShardedSearcher` worker thread per shard —
when determinism matters.

The index is *mutable* after :meth:`IVFQuantizedSearcher.fit` (the index
lifecycle required by a serving deployment):

* :meth:`IVFQuantizedSearcher.insert` encodes new vectors incrementally —
  nearest-centroid assignment against the existing IVF centroids, RaBitQ
  encoding against the fitted rotation and per-cluster centroids — without
  re-clustering or re-encoding anything already stored.  New codes are
  appended to their cluster's arena region in place (regions keep geometric
  capacity slack).
* :meth:`IVFQuantizedSearcher.delete` removes vectors by id using
  tombstones; deleted vectors stop appearing in results immediately, and
  :meth:`IVFQuantizedSearcher.compact` (triggered automatically once the
  tombstone fraction reaches ``compact_threshold``) reclaims their storage.
  ``insert`` and ``compact`` require ``quantizer_kind="rabitq"``; searchers
  wrapping an external baseline quantizer support tombstone deletion only.
* Results always report *external* ids: a vector keeps its id across any
  interleaving of inserts, deletes and compactions.  After a fresh ``fit``
  the external ids are ``0 .. n-1`` (the row positions), so existing code
  is unaffected.

Tombstone filtering is applied identically on the sequential and batch
paths (the full per-cluster estimate is always computed, then dead rows are
masked out), so the batch ≡ sequential guarantee holds at every point of the
lifecycle.  A fitted searcher — including tombstones, id mapping and the
per-cluster query-rounding streams — can be serialized with
:func:`repro.io.persistence.save_searcher` and reloaded bit-identically with
:func:`repro.io.persistence.load_searcher`.
"""

from __future__ import annotations

import contextlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.core.config import RaBitQConfig
from repro.core.estimator import (
    CONST_POPCOUNT,
    N_CONSTS,
    DistanceEstimate,
    build_code_consts,
    fused_estimate,
    undo_query_quantization,
    undo_query_quantization_multibit,
)
from repro.core.lut import (
    build_query_luts,
    build_query_luts_batch,
    lut_accumulate,
    lut_accumulate_batch,
    lut_accumulate_uint8,
    lut_accumulate_uint8_batch,
    quantize_luts_to_uint8,
)
from repro.core.metric import Metric, resolve_metric
from repro.core.quantizer import encode_rows, encode_rows_multibit
from repro.core.query import quantize_query_matrix, quantize_query_vector
from repro.core.rotation import QRRotation, make_rotation
from repro.exceptions import (
    DimensionMismatchError,
    InvalidParameterError,
    NotFittedError,
)
from repro.index.arena import CodeArena
from repro.index.flat import FlatIndex
from repro.index.ivf import PROBE_STRATEGIES, IVFIndex
from repro.index.rerank import ErrorBoundReranker, Reranker
from repro.substrates.linalg import as_float_matrix
from repro.substrates.rng import RngLike, ensure_rng, spawn_rngs


#: Cap on the number of live (query, candidate) estimate pairs per
#: processed query chunk in :meth:`IVFQuantizedSearcher.search_batch`
#: (4 float64 fields => roughly 256 MiB at this setting).
_SEARCH_BATCH_MAX_PAIRS = 8_000_000

#: The supported ``<x_b, q̄_u>`` estimation kernels (see the class docstring).
_ESTIMATION_MODES = ("gemm", "lut", "lut8")


@dataclass(frozen=True)
class SearchResult:
    """Result of one ANN query.

    Attributes
    ----------
    ids:
        Retrieved vector ids, best first (ascending reported distance for
        ``metric="l2"``, descending similarity score for ``"ip"`` /
        ``"cosine"``).
    distances:
        Metric values of the retrieved vectors — squared distances under
        ``metric="l2"``, similarity scores under ``"ip"`` / ``"cosine"``
        (exact when re-ranking computed them, estimated otherwise).
    n_candidates:
        Number of candidates whose distance was *estimated* (i.e. the total
        size of the probed clusters).
    n_exact:
        Number of candidates whose *exact* distance was computed during
        re-ranking.
    """

    ids: np.ndarray
    distances: np.ndarray
    n_candidates: int
    n_exact: int


@dataclass(frozen=True)
class BatchSearchResult:
    """Results of a batch of ANN queries, with aggregate cost counters.

    Iterating (or indexing) yields one :class:`SearchResult` per query, so
    code written against the per-query API works unchanged on batch output.

    Attributes
    ----------
    ids:
        Per-query retrieved ids (ascending reported distance).
    distances:
        Per-query squared distances of the retrieved vectors.
    n_candidates:
        Per-query number of estimated candidates, shape ``(n_queries,)``.
    n_exact:
        Per-query number of exact re-ranking computations, shape
        ``(n_queries,)``.
    """

    ids: tuple[np.ndarray, ...]
    distances: tuple[np.ndarray, ...]
    n_candidates: np.ndarray
    n_exact: np.ndarray

    def __len__(self) -> int:
        return len(self.ids)

    def __getitem__(self, i: int) -> SearchResult:
        return SearchResult(
            ids=self.ids[i],
            distances=self.distances[i],
            n_candidates=int(self.n_candidates[i]),
            n_exact=int(self.n_exact[i]),
        )

    def __iter__(self) -> Iterator[SearchResult]:
        for i in range(len(self.ids)):
            yield self[i]

    @property
    def total_candidates(self) -> int:
        """Total number of estimated candidates across the batch."""
        return int(self.n_candidates.sum())

    @property
    def total_exact(self) -> int:
        """Total number of exact re-ranking computations across the batch."""
        return int(self.n_exact.sum())


class _PreparedClusterQuery:
    """A query prepared against one cluster's centroid/rounding stream.

    Lightweight (slots-only) so it can be cached per ``(query, cluster)``:
    the quantized query coordinates as float64 (the GEMV operand), the
    affine undo coefficients, and the query-to-centroid norm.  An instance
    with ``codes_f64 is None`` is an unfilled placeholder (the batch path's
    cache bookkeeping creates those before the vectorized preparation).

    ``codes_f64`` doubles as the *publication sentinel* for concurrent
    readers: every fill path assigns the other four fields first and
    ``codes_f64`` last, and no fill path ever writes into an entry created
    by a different call (unfilled foreign placeholders are replaced with a
    fresh entry instead).  A reader that observes ``codes_f64 is not
    None`` therefore always sees a complete, internally consistent
    preparation, even when cache-enabled searchers are queried from
    several threads.

    ``luts`` / ``lut8_tables`` hold the fast-scan look-up tables of the
    LUT estimation modes, derived lazily from ``codes_f64`` on first use
    (building them consumes no randomness, so the per-cluster rounding
    streams — and therefore the ``lut`` ≡ ``gemm`` bit-identity — are
    independent of the estimation mode).  ``lut8_tables`` is assigned
    last of the three uint8 fields, making it the publication sentinel of
    the quantized tables under the same torn-read rules as ``codes_f64``.
    """

    __slots__ = (
        "codes_f64",
        "delta",
        "lower",
        "sum_codes_f",
        "query_norm",
        "luts",
        "lut8_tables",
        "lut8_scale",
        "lut8_offset",
    )

    def __init__(self) -> None:
        self.codes_f64 = None
        self.luts = None
        self.lut8_tables = None


def _empty_estimate() -> tuple[np.ndarray, DistanceEstimate]:
    empty = np.empty(0, dtype=np.float64)
    return np.empty(0, dtype=np.int64), DistanceEstimate(
        distances=empty,
        lower_bounds=empty.copy(),
        upper_bounds=empty.copy(),
        inner_products=empty.copy(),
    )


class IVFQuantizedSearcher:
    """ANN search pipeline combining IVF, a quantizer and a re-ranker.

    Parameters
    ----------
    quantizer_kind:
        ``"rabitq"`` for per-cluster-encoded RaBitQ codes in a contiguous
        arena (the paper's method) or ``"external"`` when an
        already-constructed baseline quantizer (PQ, OPQ, ...) trained on the
        full dataset is supplied via ``external_quantizer``.
    n_clusters:
        Number of IVF clusters (``None`` = size-scaled default).
    rabitq_config:
        Configuration of the per-cluster RaBitQ encoding.
    external_quantizer:
        A fitted-on-demand baseline quantizer exposing ``fit`` /
        ``estimate_distances`` (only used when ``quantizer_kind="external"``).
    reranker:
        Re-ranking strategy; defaults to the error-bound rule for RaBitQ and
        must be supplied explicitly for baselines.
    rng:
        Seed or generator for the IVF clustering.
    compact_threshold:
        Tombstone fraction at which :meth:`delete` triggers an automatic
        :meth:`compact` (``None`` disables auto-compaction; explicit
        ``compact()`` calls still work).
    query_cache_size:
        Capacity (in entries) of the FIFO prepared-query cache keyed by
        ``(query bytes, cluster id)``; ``0`` (the default) disables caching.
        With the cache enabled, repeated identical queries skip preparation
        and draw no randomness — see the module docstring for the exact
        replay semantics.
    metric:
        The served metric: ``"l2"`` (squared Euclidean distance, the
        default and the paper's setting), ``"ip"`` (maximum-inner-product
        search) or ``"cosine"`` (cosine similarity) — see
        :mod:`repro.core.metric`.  The metric threads through every layer:
        probing ranks centroids by it, the fused estimator emits
        metric-appropriate values and bounds, re-ranking flips to
        maximization for similarities, and results report metric values
        best-first.  Similarity metrics require
        ``quantizer_kind="rabitq"``.
    estimation_mode:
        The ``<x_b, q̄_u>`` estimation kernel (RaBitQ searchers only):
        ``"gemm"`` (the default) runs the integer-exact float64 GEMM/GEMV
        on the unpacked codes; ``"lut"`` runs the paper's fast-scan 4-bit
        look-up-table accumulation (Sec. 3.3.2) over the arena's segment
        ids — **bit-identical** to ``"gemm"`` (float64 accumulation of
        integer query codes is exact) across the whole lifecycle,
        sequential, batch and sharded; ``"lut8"`` additionally quantizes
        each query's tables to ``uint8`` as the SIMD fast-scan layout
        does, trading exactness for the reduced-precision table format
        (absolute estimation error on the integer dot is bounded by
        ``n_segments * scale / 2``).  The mode is a property and may be
        switched on a fitted searcher at any mutation-free point; LUTs
        are derived lazily per prepared query and consume no randomness,
        so switching modes never perturbs the rounding streams, and the
        concurrency / cache contract above is mode-independent.
    bits:
        Code width ``B`` in bits per dimension (RaBitQ searchers only).
        ``None`` (the default) keeps the width of ``rabitq_config``
        (itself defaulting to 1, the paper's binary construction); an
        explicit value overrides it.  Multi-bit widths (2 / 4 / 8) store
        scalar-quantized residual magnitudes as extra bit-planes for a
        space/accuracy trade-off, and require ``estimation_mode="gemm"``
        — the fast-scan LUT modes are binary-only and reject ``B > 1``
        with :class:`repro.exceptions.InvalidParameterError`.
    probe_strategy:
        How the ``nprobe`` clusters are found per query: ``"exact"`` (the
        default) scans every centroid with the metric's key kernel;
        ``"graph"`` navigates a deterministic HNSW graph over the centroids
        (built lazily at first use, rebuilt bit-identically after re-fits —
        see :meth:`IVFIndex.centroid_graph`), evaluating keys only along
        the beam-search frontier.  Downstream estimation, re-ranking and
        randomness are identical under both strategies; only the probed
        cluster ranking may differ, and the benchmark gates pin graph
        probing's candidate sets and recall against the exact oracle.
    """

    def __init__(
        self,
        quantizer_kind: str = "rabitq",
        *,
        n_clusters: int | None = None,
        rabitq_config: Optional[RaBitQConfig] = None,
        external_quantizer=None,
        reranker: Optional[Reranker] = None,
        rng: RngLike = None,
        compact_threshold: float | None = 0.25,
        query_cache_size: int = 0,
        metric: str | Metric = "l2",
        estimation_mode: str = "gemm",
        bits: int | None = None,
        probe_strategy: str = "exact",
    ) -> None:
        if quantizer_kind not in ("rabitq", "external"):
            raise InvalidParameterError(
                "quantizer_kind must be 'rabitq' or 'external'"
            )
        if quantizer_kind == "external" and external_quantizer is None:
            raise InvalidParameterError(
                "external_quantizer must be provided when quantizer_kind='external'"
            )
        if compact_threshold is not None and not 0.0 < compact_threshold <= 1.0:
            raise InvalidParameterError(
                "compact_threshold must lie in (0, 1] or be None"
            )
        if query_cache_size < 0:
            raise InvalidParameterError("query_cache_size must be >= 0")
        self._metric = resolve_metric(metric)
        if quantizer_kind != "rabitq" and self._metric.name != "l2":
            raise InvalidParameterError(
                "similarity metrics require quantizer_kind='rabitq' "
                "(external baseline quantizers estimate squared L2 only)"
            )
        if estimation_mode not in _ESTIMATION_MODES:
            raise InvalidParameterError(
                f"estimation_mode must be one of {_ESTIMATION_MODES}"
            )
        if estimation_mode != "gemm" and quantizer_kind != "rabitq":
            raise InvalidParameterError(
                "LUT estimation modes require quantizer_kind='rabitq'"
            )
        if probe_strategy not in PROBE_STRATEGIES:
            raise InvalidParameterError(
                f"probe_strategy must be one of {PROBE_STRATEGIES}"
            )
        self._probe_strategy = probe_strategy
        self._estimation_mode = estimation_mode
        self.quantizer_kind = quantizer_kind
        self.n_clusters = n_clusters
        self.rabitq_config = (
            rabitq_config if rabitq_config is not None else RaBitQConfig(seed=0)
        )
        if bits is not None:
            # Validation (supported widths) happens in the config itself.
            self.rabitq_config = self.rabitq_config.with_overrides(
                bits=int(bits)
            )
        if (
            quantizer_kind == "rabitq"
            and self.rabitq_config.bits > 1
            and estimation_mode != "gemm"
        ):
            raise InvalidParameterError(
                f"estimation_mode {estimation_mode!r} supports only 1-bit "
                f"codes (fast-scan LUT tables are binary); use 'gemm' for "
                f"bits={self.rabitq_config.bits}"
            )
        self.external_quantizer = external_quantizer
        self.reranker: Reranker = (
            reranker if reranker is not None else ErrorBoundReranker()
        )
        self.compact_threshold = compact_threshold
        self.query_cache_size = int(query_cache_size)
        self._rng = ensure_rng(rng)
        self._ivf: IVFIndex | None = None
        self._flat: FlatIndex | None = None
        self._arena: CodeArena | None = None
        self._query_rngs: list[np.random.Generator | None] | None = None
        self._shared_rotation = None
        self._rotation_matrix: np.ndarray | None = None
        # Lifecycle state: slot -> external id, external id -> slot, and the
        # per-slot tombstone mask (True = live).
        self._ids: np.ndarray | None = None
        self._id_to_slot: dict[int, int] = {}
        self._live: np.ndarray | None = None
        self._n_dead = 0
        self._next_id = 0
        # Query-time work areas: the scratch-buffer pool (grown on demand,
        # reused across queries; one pool *per thread*, so concurrent
        # searches never share a buffer) and the optional prepared-query
        # cache.
        self._tls = threading.local()
        self._pad_len: int | None = None
        self._prepared_cache: "OrderedDict[tuple[bytes, int], _PreparedClusterQuery]" = (
            OrderedDict()
        )
        # Crash-recovery state, populated by the persistence layer: the
        # UUID of the archive generation this searcher was loaded from (or
        # last saved as) and the attached mutation journal, if any.
        self._archive_uuid: str | None = None
        self._journal = None

    # ------------------------------------------------------------------ #
    # Index phase
    # ------------------------------------------------------------------ #

    @property
    def metric(self) -> str:
        """Name of the served metric (``"l2"``, ``"ip"`` or ``"cosine"``)."""
        return self._metric.name

    @property
    def estimation_mode(self) -> str:
        """The ``<x_b, q̄_u>`` kernel: ``"gemm"``, ``"lut"`` or ``"lut8"``.

        Settable on a fitted searcher (outside of concurrent queries):
        switching kernels changes how the integer dot is computed, never
        what randomness is consumed, so ``"lut"`` answers stay
        bit-identical to ``"gemm"`` from any shared stream state.
        """
        return self._estimation_mode

    @estimation_mode.setter
    def estimation_mode(self, mode: str) -> None:
        if mode not in _ESTIMATION_MODES:
            raise InvalidParameterError(
                f"estimation_mode must be one of {_ESTIMATION_MODES}"
            )
        if mode != "gemm" and self.quantizer_kind != "rabitq":
            raise InvalidParameterError(
                "LUT estimation modes require quantizer_kind='rabitq'"
            )
        if (
            mode != "gemm"
            and self.quantizer_kind == "rabitq"
            and self.rabitq_config.bits > 1
        ):
            raise InvalidParameterError(
                f"estimation_mode {mode!r} supports only 1-bit codes "
                f"(fast-scan LUT tables are binary); use 'gemm' for "
                f"bits={self.rabitq_config.bits}"
            )
        self._estimation_mode = mode

    @property
    def probe_strategy(self) -> str:
        """Centroid-probing strategy: ``"exact"`` or ``"graph"``.

        Settable on a fitted searcher at any mutation-free point — the
        strategy changes how the ``nprobe`` clusters are *found*, never
        which estimator or rounding stream a probed cluster uses, so
        switching strategies perturbs no randomness.  With ``"graph"`` the
        IVF index navigates a deterministic HNSW graph over its centroids
        (built lazily on the first graph probe); ``"exact"`` restores the
        exhaustive centroid scan, which remains the equivalence oracle.
        """
        return self._probe_strategy

    @probe_strategy.setter
    def probe_strategy(self, strategy: str) -> None:
        if strategy not in PROBE_STRATEGIES:
            raise InvalidParameterError(
                f"probe_strategy must be one of {PROBE_STRATEGIES}"
            )
        self._probe_strategy = strategy
        if self._ivf is not None:
            self._ivf.probe_strategy = strategy

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._ivf is not None

    @property
    def ivf(self) -> IVFIndex:
        """The underlying IVF coarse index."""
        if self._ivf is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        return self._ivf

    @property
    def flat(self) -> FlatIndex:
        """The exact index used for re-ranking."""
        if self._flat is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        return self._flat

    @property
    def dim(self) -> int:
        """Vector dimensionality served by this searcher."""
        return self.flat.dim

    @property
    def arena(self) -> CodeArena:
        """The contiguous code arena (RaBitQ searchers only)."""
        if self._arena is None:
            raise NotFittedError(
                "IVFQuantizedSearcher must be fitted before use (and the "
                "code arena exists only for quantizer_kind='rabitq')"
            )
        return self._arena

    def _build_cluster_consts(
        self,
        rows: np.ndarray,
        cid: int,
        popcounts: np.ndarray,
        alignments: np.ndarray,
        norms: np.ndarray,
        code_length: int,
    ) -> np.ndarray:
        """Fused estimator constants for ``rows`` encoded against ``cid``.

        For ``metric="l2"`` this is the historical 7-row matrix; similarity
        metrics append the centroid-decomposition rows (``<o_r, c>`` against
        the cluster centroid and the raw norms ``||o_r||``) that
        :func:`repro.core.estimator.fused_estimate` consumes at query time.
        """
        epsilon0 = self.rabitq_config.epsilon0
        if self._metric.n_consts == N_CONSTS:
            return build_code_consts(
                alignments, norms, popcounts, code_length, epsilon0
            )
        return build_code_consts(
            alignments,
            norms,
            popcounts,
            code_length,
            epsilon0,
            metric=self._metric,
            dot_centroid=rows @ self._ivf.centroids[cid],
            raw_norms=np.sqrt(np.einsum("ij,ij->i", rows, rows)),
        )

    @property
    def bits(self) -> int:
        """Code width ``B`` in bits per dimension (1 for binary RaBitQ)."""
        return int(self.rabitq_config.bits)

    def _encode_cluster_rows(
        self, rows: np.ndarray, cid: int, code_length: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Encode ``rows`` against cluster ``cid``'s centroid.

        Returns ``(packed, unpacked, consts)`` in the arena's layout: for
        ``B = 1`` exactly the historical binary encoding; for ``B > 1``
        plane-major packed levels, the per-dimension level matrix (the
        GEMM operand), and the metric's constants with the level sums in
        the popcount row plus the per-code rescale factor appended as the
        trailing row.
        """
        assert self._ivf is not None
        bits = self.bits
        if bits > 1:
            (
                packed,
                levels,
                level_sums,
                alignments,
                norms,
                rescales,
            ) = encode_rows_multibit(
                rows,
                self._ivf.centroids[cid],
                self._shared_rotation,
                code_length,
                bits,
            )
            consts = self._build_cluster_consts(
                rows, cid, level_sums, alignments, norms, code_length
            )
            return packed, levels, np.vstack([consts, rescales[None, :]])
        packed, bit_mat, popcounts, alignments, norms = encode_rows(
            rows,
            self._ivf.centroids[cid],
            self._shared_rotation,
            code_length,
        )
        consts = self._build_cluster_consts(
            rows, cid, popcounts, alignments, norms, code_length
        )
        return packed, bit_mat, consts

    def _fresh_query_rng(self) -> np.random.Generator:
        """A cluster rounding stream in its initial state.

        Matches the stream a freshly constructed per-cluster ``RaBitQ``
        would have owned (the second of the two generators spawned from the
        config seed), so lifecycle behaviour — including the stream reset
        when an emptied cluster is later repopulated — is unchanged from
        the pre-arena implementation.
        """
        return spawn_rngs(self.rabitq_config.seed, 2)[1]

    def fit(
        self, data: np.ndarray, *, kmeans_sample_size: int | None = None
    ) -> "IVFQuantizedSearcher":
        """Build the IVF index and train the quantizer(s) on ``data``.

        External ids are assigned positionally (``0 .. n-1``); they remain
        stable across later :meth:`insert` / :meth:`delete` /
        :meth:`compact` calls.  ``kmeans_sample_size`` caps the KMeans
        training set for million-scale fits (see :meth:`IVFIndex.fit`);
        assignment, encoding and re-ranking always cover every row.
        """
        mat = as_float_matrix(data, "data")
        self._flat = FlatIndex(mat)
        self._ivf = IVFIndex(
            self.n_clusters, rng=self._rng, probe_strategy=self._probe_strategy
        ).fit(mat, kmeans_sample_size=kmeans_sample_size)

        if self.quantizer_kind == "rabitq":
            # All clusters share one rotation so that the query only needs to
            # be rotated once per cluster-centroid frame.
            code_length = self.rabitq_config.resolve_code_length(mat.shape[1])
            shared_rotation = make_rotation(
                self.rabitq_config.rotation, code_length, self._rng
            )
            self._shared_rotation = shared_rotation
            n_clusters = len(self._ivf.buckets)
            self._query_rngs = [None] * n_clusters
            blocks: dict[int, tuple] = {}
            for bucket in self._ivf.buckets:
                if len(bucket) == 0:
                    continue
                cid = bucket.centroid_id
                rows = mat[bucket.vector_ids]
                packed, unpacked, consts = self._encode_cluster_rows(
                    rows, cid, code_length
                )
                blocks[cid] = (packed, unpacked, consts, bucket.vector_ids)
                self._query_rngs[cid] = self._fresh_query_rng()
            code_bits = self.bits
            self._arena = CodeArena.from_blocks(
                n_clusters,
                code_length,
                ((code_length + 63) // 64) * code_bits,
                blocks,
                self._metric.n_consts + (1 if code_bits > 1 else 0),
                code_bits,
            )
            self._pad_len = code_length
            self._rotation_matrix = (
                shared_rotation.as_matrix()
                if isinstance(shared_rotation, QRRotation)
                else None
            )
        else:
            self.external_quantizer.fit(mat)
        n = mat.shape[0]
        self._ids = np.arange(n, dtype=np.int64)
        self._id_to_slot = {i: i for i in range(n)}
        self._live = np.ones(n, dtype=bool)
        self._n_dead = 0
        self._next_id = n
        self._tls = threading.local()
        self._prepared_cache.clear()
        return self

    # ------------------------------------------------------------------ #
    # Mutation phase (index lifecycle)
    # ------------------------------------------------------------------ #

    @property
    def n_total(self) -> int:
        """Number of stored slots, including tombstoned ones."""
        if self._live is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        return int(self._live.shape[0])

    @property
    def n_deleted(self) -> int:
        """Number of tombstoned (deleted but not yet compacted) vectors."""
        if self._live is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        return self._n_dead

    @property
    def n_live(self) -> int:
        """Number of searchable vectors."""
        return self.n_total - self.n_deleted

    @property
    def live_ids(self) -> np.ndarray:
        """External ids of all searchable vectors (ascending slot order)."""
        if self._ids is None or self._live is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        return self._ids[self._live].copy()

    def _journal_record(self, op: str, **arrays: np.ndarray) -> None:
        """Append a mutation record when a journal is attached (else no-op)."""
        if self._journal is not None:
            self._journal.record(op, **arrays)

    def _journal_suspended(self):
        """Silence journaling inside the block (nested implied mutations)."""
        if self._journal is not None:
            return self._journal.suspend()
        return contextlib.nullcontext()

    def insert(
        self, vectors: np.ndarray, ids: np.ndarray | None = None
    ) -> np.ndarray:
        """Add new vectors to the fitted index and return their external ids.

        Each vector is assigned to the nearest existing IVF centroid and
        RaBitQ-encoded against the fitted rotation and that cluster's
        centroid — no re-clustering and no re-encoding of existing vectors.
        The new codes are appended to their cluster's arena region;
        estimates for previously stored vectors are bit-identical before and
        after the insert.

        Parameters
        ----------
        vectors:
            New raw vectors, shape ``(n_new, dim)`` (or a single vector).
        ids:
            Optional external ids for the new vectors; must be unique and
            not currently present.  Default: consecutive fresh ids.
        """
        if self._ivf is None or self._flat is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        if self.quantizer_kind != "rabitq":
            raise InvalidParameterError(
                "insert is only supported for quantizer_kind='rabitq'"
            )
        mat = as_float_matrix(vectors, "vectors")
        n_new = mat.shape[0]
        if n_new == 0:
            return np.empty(0, dtype=np.int64)
        if mat.shape[1] != self._flat.dim:
            raise DimensionMismatchError(
                f"vectors have dimension {mat.shape[1]}, index expects "
                f"{self._flat.dim}"
            )
        if ids is None:
            new_ids = np.arange(self._next_id, self._next_id + n_new, dtype=np.int64)
        else:
            new_ids = np.asarray(ids, dtype=np.int64).reshape(-1)
            if new_ids.shape[0] != n_new:
                raise InvalidParameterError(
                    "need exactly one external id per inserted vector"
                )
            if np.unique(new_ids).shape[0] != n_new:
                raise InvalidParameterError("inserted ids must be unique")
            collisions = [i for i in new_ids.tolist() if i in self._id_to_slot]
            if collisions:
                raise InvalidParameterError(
                    f"ids already present in the index: {collisions[:5]}"
                )

        cluster_ids = self._ivf.assign(mat)
        slots = self._flat.add(mat)
        self._ivf.append(slots, cluster_ids)
        arena = self._arena
        assert arena is not None and self._query_rngs is not None
        code_length = arena.code_length
        for cid in np.unique(cluster_ids):
            cid = int(cid)
            rows = np.flatnonzero(cluster_ids == cid)
            row_mat = mat[rows]
            packed, unpacked, consts = self._encode_cluster_rows(
                row_mat, cid, code_length
            )
            if self._query_rngs[cid] is None:
                # The cluster was empty at fit time (or emptied by a
                # compact): its rounding stream starts fresh now, exactly as
                # a newly built per-cluster quantizer's would have.
                self._query_rngs[cid] = self._fresh_query_rng()
            arena.append(cid, packed, unpacked, consts, slots[rows])

        assert self._ids is not None and self._live is not None
        self._ids = np.concatenate([self._ids, new_ids])
        self._live = np.concatenate([self._live, np.ones(n_new, dtype=bool)])
        for slot, ext in zip(slots.tolist(), new_ids.tolist()):
            self._id_to_slot[ext] = slot
        self._next_id = max(self._next_id, int(new_ids.max()) + 1)
        # Mutations invalidate the prepared-query cache: a cached entry must
        # never survive across a change of the indexed set, so that a cached
        # searcher re-prepares exactly like an uncached one at every
        # mutation boundary (see the module docstring).
        self._prepared_cache.clear()
        # Journal the *resolved* ids: replay must never re-derive id
        # assignment (the fresh-id counter may have moved since).
        self._journal_record("insert", vectors=mat, ids=new_ids)
        return new_ids

    def delete(self, ids: np.ndarray | int) -> int:
        """Tombstone the given external ids and return how many were removed.

        Deleted vectors stop appearing in search results immediately.  For
        RaBitQ searchers their storage is reclaimed by :meth:`compact`,
        which runs automatically once the tombstone fraction reaches
        ``compact_threshold``; external-quantizer searchers support
        tombstoning only (their baseline quantizers cannot re-index codes,
        so compaction is unavailable and tombstones persist).  Unknown (or
        already-deleted) ids raise :class:`InvalidParameterError`;
        duplicate ids in the request are collapsed.
        """
        if self._ivf is None or self._live is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        requested = np.unique(np.asarray(ids, dtype=np.int64).reshape(-1))
        slots = []
        missing = []
        for ext in requested.tolist():
            slot = self._id_to_slot.get(ext)
            if slot is None:
                missing.append(ext)
            else:
                slots.append((ext, slot))
        if missing:
            raise InvalidParameterError(
                f"cannot delete unknown or already-deleted ids: {missing[:5]}"
            )
        for ext, slot in slots:
            del self._id_to_slot[ext]
            self._live[slot] = False
        self._n_dead += len(slots)
        self._prepared_cache.clear()  # mutations invalidate cached queries
        if (
            self.compact_threshold is not None
            and self.quantizer_kind == "rabitq"
            and self._n_dead >= self.compact_threshold * self._live.shape[0]
        ):
            # Replaying the delete record re-triggers this compaction
            # deterministically, so journaling it too would duplicate it.
            with self._journal_suspended():
                self.compact()
        self._journal_record("delete", ids=requested)
        return len(slots)

    def compact(self) -> int:
        """Physically drop tombstoned vectors; return the number reclaimed.

        Dead rows are removed from the flat index, the inverted lists and
        the code arena, and the surviving slots are renumbered contiguously.
        External ids are untouched, and because every removed row is
        row-local, search results (ids, distances *and* cost counters) are
        identical before and after a compaction.
        """
        if self._ivf is None or self._flat is None or self._live is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        if self.quantizer_kind != "rabitq":
            raise InvalidParameterError(
                "compact is only supported for quantizer_kind='rabitq'"
            )
        if self._n_dead == 0:
            return 0
        keep = self._live.copy()
        arena = self._arena
        assert arena is not None and self._query_rngs is not None
        assert self._ids is not None
        arena.compact(keep)
        for cid in range(arena.n_clusters):
            if arena.sizes[cid] == 0:
                # An emptied cluster drops its rounding stream; a later
                # insert starts a fresh one (pre-arena lifecycle semantics).
                self._query_rngs[cid] = None
        self._ivf.keep_rows(keep)
        self._flat.keep_rows(keep)
        self._ids = self._ids[keep]
        self._live = np.ones(self._ids.shape[0], dtype=bool)
        self._id_to_slot = {
            int(ext): slot for slot, ext in enumerate(self._ids.tolist())
        }
        reclaimed = self._n_dead
        self._n_dead = 0
        self._prepared_cache.clear()  # mutations invalidate cached queries
        # The no-reclaim early return above skips the record: a replayed
        # no-op compact would be harmless, but not journaling it keeps the
        # journal a faithful log of state *changes*.
        self._journal_record("compact")
        return reclaimed

    # ------------------------------------------------------------------ #
    # Query phase
    # ------------------------------------------------------------------ #

    def _scratch_get(self, name: str, size: int, dtype) -> np.ndarray:
        """A flat scratch buffer of at least ``size`` elements (reused).

        Buffers live in thread-local storage: each thread querying the
        searcher gets (and reuses) its own pool, so concurrent ``search`` /
        ``search_batch`` calls never write into a shared work area.
        """
        store = getattr(self._tls, "scratch", None)
        if store is None:
            store = {}
            self._tls.scratch = store
        buf = store.get(name)
        if buf is None or buf.size < size:
            capacity = max(size, 2 * buf.size if buf is not None else 0)
            buf = np.empty(capacity, dtype=dtype)
            store[name] = buf
        return buf

    def _rotate_row(self, unit: np.ndarray) -> np.ndarray:
        """``P^-1`` applied to one zero-padded unit row (thread-local pad).

        Dense rotations go straight through the cached matrix — the very
        same ``(1, L) @ (L, L)`` BLAS call ``Rotation.apply_inverse`` makes,
        minus its per-call validation; structured (Hadamard) rotations fall
        back to ``apply_inverse``.  The pad buffer is per-thread, like the
        scratch pool.
        """
        assert self._pad_len is not None
        pad = getattr(self._tls, "pad", None)
        if pad is None or pad.shape[1] != self._pad_len:
            pad = np.zeros((1, self._pad_len), dtype=np.float64)
            self._tls.pad = pad
        pad[0, : unit.shape[0]] = unit
        matrix = self._rotation_matrix
        if matrix is not None:
            return (pad @ matrix)[0]
        return self._shared_rotation.apply_inverse(pad)[0]

    def _prepare_cluster_query(
        self,
        vec: np.ndarray,
        cid: int,
        entry: _PreparedClusterQuery,
        residual: np.ndarray | None = None,
    ) -> _PreparedClusterQuery:
        """Prepare ``vec`` against cluster ``cid``, filling ``entry``.

        The arithmetic is exactly the pre-arena per-cluster preparation
        (normalize to the cluster centroid, pad, rotate the single row,
        randomized-rounding quantization from the cluster's stream), minus
        the look-up-table construction and bit-plane packing the fused GEMV
        kernel never touches — skipping those consumes no randomness.
        ``residual`` optionally passes the precomputed ``vec - centroid``
        row (the caller batches that subtraction across probed clusters;
        elementwise, so the values are unchanged).
        """
        assert self._ivf is not None and self._query_rngs is not None
        config = self.rabitq_config
        if residual is None:
            residual = vec - self._ivf.centroids[cid]
        # Inline normalize_query on the precomputed residual; the 1-D norm
        # is sqrt(dot) — exactly what np.linalg.norm computes on a vector.
        norm = float(np.sqrt(np.dot(residual, residual)))
        if norm == 0.0:
            unit, query_norm = np.zeros_like(residual), 0.0
        else:
            unit, query_norm = residual / norm, norm
        rotated = self._rotate_row(unit)
        quantized = quantize_query_vector(
            rotated,
            config.query_bits,
            randomized=config.randomized_rounding,
            rng=self._query_rngs[cid],
            with_bitplanes=False,
        )
        entry.delta = quantized.delta
        entry.lower = quantized.lower
        entry.sum_codes_f = float(quantized.sum_codes)
        entry.query_norm = query_norm
        entry.codes_f64 = quantized.codes.astype(np.float64)  # sentinel last
        return entry

    def _prepare_cluster_queries(
        self, sub_mat: np.ndarray, cid: int
    ) -> tuple:
        """Vectorized cluster preparation of several queries at once.

        Bit-identical to calling :meth:`_prepare_cluster_query` row by row
        from the same stream state: normalization and rotation are applied
        per row, the scalar quantization consumes the rounding stream in
        ascending row order (degenerate rows draw nothing, as the scalar
        path skips its draw).
        """
        assert self._ivf is not None and self._query_rngs is not None
        config = self.rabitq_config
        assert self._arena is not None
        n_rows = sub_mat.shape[0]
        residuals = sub_mat - self._ivf.centroids[cid][None, :]
        units = np.empty_like(residuals)
        query_norms = np.empty(n_rows, dtype=np.float64)
        rotated = np.empty((n_rows, self._arena.code_length), dtype=np.float64)
        for i in range(n_rows):
            # Per-row normalization (1-D sqrt(dot)) and rotation, exactly as
            # the sequential path — axis reductions would round differently.
            norm = float(np.sqrt(np.dot(residuals[i], residuals[i])))
            if norm == 0.0:
                units[i] = 0.0
                query_norms[i] = 0.0
            else:
                np.divide(residuals[i], norm, out=units[i])
                query_norms[i] = norm
            rotated[i] = self._rotate_row(units[i])
        quantized = quantize_query_matrix(
            rotated,
            config.query_bits,
            randomized=config.randomized_rounding,
            rng=self._query_rngs[cid],
            with_bitplanes=False,
        )
        return quantized, query_norms

    def _prepared_for(
        self,
        vec: np.ndarray,
        key_bytes: bytes | None,
        cid: int,
        residual: np.ndarray | None = None,
    ) -> _PreparedClusterQuery:
        """Cache-aware prepared query for ``(vec, cid)`` (sequential path).

        Misses prepare into a *fresh* entry and publish it to the cache
        only once complete (an existing unfilled placeholder — possible
        only after a failed or concurrent batch call — is replaced, never
        written into), so concurrent readers can never observe a torn
        entry.
        """
        if key_bytes is None:
            return self._prepare_cluster_query(
                vec, cid, _PreparedClusterQuery(), residual
            )
        cache = self._prepared_cache
        key = (key_bytes, cid)
        entry = cache.get(key)
        if entry is not None and entry.codes_f64 is not None:
            return entry
        fresh = self._prepare_cluster_query(
            vec, cid, _PreparedClusterQuery(), residual
        )
        cache[key] = fresh
        while len(cache) > self.query_cache_size:
            cache.popitem(last=False)
        return fresh

    @staticmethod
    def _query_luts(prepared: _PreparedClusterQuery) -> np.ndarray:
        """The prepared query's fast-scan LUTs, built lazily on first use.

        Derivation is a pure function of the already-quantized codes —
        no randomness is consumed, so the per-cluster rounding streams
        (and with them the ``lut`` ≡ ``gemm`` bit-identity) are
        independent of the estimation mode.  The benign write race under
        concurrent lazy fills is idempotent (both threads derive the same
        tables from the same published codes).
        """
        luts = prepared.luts
        if luts is None:
            luts = build_query_luts(prepared.codes_f64)
            prepared.luts = luts
        return luts

    @classmethod
    def _query_luts_uint8(
        cls, prepared: _PreparedClusterQuery
    ) -> tuple[np.ndarray, float, float]:
        """The prepared query's ``uint8``-quantized LUTs (+ scale/offset)."""
        tables = prepared.lut8_tables
        if tables is None:
            tables, scale, offset = quantize_luts_to_uint8(
                cls._query_luts(prepared)
            )
            prepared.lut8_scale = scale
            prepared.lut8_offset = offset
            prepared.lut8_tables = tables  # sentinel last
            return tables, scale, offset
        return tables, prepared.lut8_scale, prepared.lut8_offset

    def _estimate_rabitq(
        self, query: np.ndarray, cluster_ids: np.ndarray
    ) -> tuple[np.ndarray, DistanceEstimate]:
        """Fused estimation for all live vectors in the probed clusters.

        One integer pass per probed cluster on its contiguous arena slice
        — a GEMV over the unpacked codes or a fast-scan LUT accumulation
        over the segment ids, per ``estimation_mode`` — coefficients and
        constants gathered into the scratch pool, then a single fused
        affine/estimator pass over the whole candidate set.
        Tombstoned rows are masked out *after* the full per-cluster estimate
        (never skipped before it): this keeps the per-cluster randomized
        query-rounding streams — and with them the batch ≡ sequential
        guarantee — independent of the deletion pattern.
        """
        arena = self._arena
        assert arena is not None and self._live is not None
        sizes = arena.sizes
        total = int(sizes[cluster_ids].sum())
        if total == 0:
            return _empty_estimate()
        code_length = arena.code_length
        code_bits = arena.bits_per_dim
        sqrt_d = np.sqrt(float(code_length))
        max_size = int(sizes[cluster_ids].max())
        n_consts = arena.n_consts

        qdot = self._scratch_get("qdot", total, np.float64)[:total]
        qn = self._scratch_get("qn", total, np.float64)[:total]
        cand = self._scratch_get("cand", total, np.int64)[:total]
        consts_buf = self._scratch_get(
            "consts", n_consts * total, np.float64
        )[: n_consts * total].reshape(n_consts, total)
        mode = self._estimation_mode
        if mode == "gemm":
            bits_f = self._scratch_get(
                "bits_f", max_size * code_length, np.float64
            )[: max_size * code_length].reshape(max_size, code_length)
            dot = self._scratch_get("dot", max_size, np.float64)
        else:
            bits_f = dot = None  # LUT modes never touch the unpacked codes
        tmp = self._scratch_get("tmp", max_size, np.float64)

        # Similarity metrics need the per-cluster centroid-decomposition
        # offset ``<q_r, c> - ||c||^2`` (and, for cosine, the raw query
        # norm).  Each scalar is computed with the exact operations the
        # batch path applies per (query, cluster) pair, keeping batch ≡
        # sequential bit-identical for every metric.
        similarity = self._metric.higher_is_better
        qoff = (
            self._scratch_get("qoff", total, np.float64)[:total]
            if similarity
            else None
        )
        # Multi-bit bounds carry the per-cluster query-rounding term
        # (eps0 * Δ/2, Δ from that cluster's residual quantization); binary
        # codes pass None and keep the historical half-width bit-identically.
        eps0 = float(self.rabitq_config.epsilon0)
        qround = (
            self._scratch_get("qround", total, np.float64)[:total]
            if code_bits > 1
            else None
        )
        query_raw_norm = (
            float(np.sqrt(np.dot(query, query)))
            if self._metric.name == "cosine"
            else None
        )

        key_bytes = query.tobytes() if self.query_cache_size > 0 else None
        # One batched subtraction for all probed centroids (elementwise, so
        # each row equals the per-cluster ``vec - centroid``).
        residuals = query[None, :] - self._ivf.centroids[cluster_ids]
        offset = 0
        for j, cid in enumerate(cluster_ids):
            cid = int(cid)
            size = int(sizes[cid])
            if size == 0:
                continue
            prepared = self._prepared_for(query, key_bytes, cid, residuals[j])
            start = int(arena.starts[cid])
            end = start + size
            # Integer inner products <x_b, q_u>.  "gemm": float64 GEMV on
            # the unpacked codes — exact (all partial sums are integers far
            # below 2^53), hence identical to the popcount kernel.  "lut":
            # fast-scan LUT accumulation over the 4-bit segment ids — the
            # same exact integers, hence bit-identical.  "lut8": the
            # reduced-precision uint8-table accumulation (bounded error).
            if mode == "gemm":
                np.copyto(
                    bits_f[:size], arena.bits[start:end], casting="unsafe"
                )
                np.matmul(bits_f[:size], prepared.codes_f64, out=dot[:size])
                acc = dot[:size]
            elif mode == "lut":
                acc = lut_accumulate(
                    arena.segs[start:end], self._query_luts(prepared)
                )
            else:
                tables, scale, table_offset = self._query_luts_uint8(prepared)
                acc = lut_accumulate_uint8(
                    arena.segs[start:end], tables, scale, table_offset
                )
            # Affine undo of the query quantization (Eq. 19-20) — the
            # out=-buffer form of estimator.undo_query_quantization, written
            # straight into this cluster's slice of the flat buffer with
            # the sequential path's exact scalar-coefficient arithmetic.
            # Multi-bit codes go through the shared multi-bit undo (level
            # sums in the popcount row, rescales in the trailing row).
            sl = slice(offset, offset + size)
            delta = prepared.delta
            lower = prepared.lower
            if code_bits > 1:
                qdot[sl] = undo_query_quantization_multibit(
                    acc,
                    arena.consts[CONST_POPCOUNT, start:end],
                    arena.consts[-1, start:end],
                    delta,
                    lower,
                    prepared.sum_codes_f,
                    code_length,
                    code_bits,
                )
            else:
                out = qdot[sl]
                np.multiply(acc, 2.0 * delta / sqrt_d, out=out)
                np.multiply(
                    arena.consts[CONST_POPCOUNT, start:end],
                    2.0 * lower / sqrt_d,
                    out=tmp[:size],
                )
                out += tmp[:size]
                out -= delta / sqrt_d * prepared.sum_codes_f
                out -= sqrt_d * lower
            consts_buf[:, sl] = arena.consts[:, start:end]
            qn[sl] = prepared.query_norm
            if qround is not None:
                qround[sl] = 0.5 * eps0 * prepared.delta
            cand[sl] = arena.slots[start:end]
            if qoff is not None:
                qoff[sl] = float(
                    np.dot(query, self._ivf.centroids[cid])
                ) - float(self._ivf.centroid_sq_norms[cid])
            offset += size

        if not similarity:
            estimate = fused_estimate(
                qdot, consts_buf, qn, query_rounding=qround
            )
        else:
            estimate = fused_estimate(
                qdot,
                consts_buf,
                qn,
                metric=self._metric,
                query_offset=qoff,
                query_raw_norm=query_raw_norm,
                query_rounding=qround,
            )
        if self._n_dead == 0:
            return cand, estimate
        mask = self._live[cand]
        if mask.all():
            return cand, estimate
        if not mask.any():
            return _empty_estimate()
        return cand[mask], DistanceEstimate(
            distances=estimate.distances[mask],
            lower_bounds=estimate.lower_bounds[mask],
            upper_bounds=estimate.upper_bounds[mask],
            inner_products=estimate.inner_products[mask],
        )

    def _estimate_external(
        self, query: np.ndarray, cluster_ids: np.ndarray
    ) -> tuple[np.ndarray, DistanceEstimate]:
        """Estimate distances with the external (PQ/OPQ-style) quantizer."""
        assert self._ivf is not None and self._live is not None
        live = self._live
        blocks: list[np.ndarray] = []
        for cid in cluster_ids:
            ids = self._ivf.buckets[int(cid)].vector_ids
            if ids.shape[0] == 0:
                continue
            mask = live[ids]
            if not mask.any():
                continue
            blocks.append(ids if mask.all() else ids[mask])
        if not blocks:
            return _empty_estimate()
        candidate_ids = np.concatenate(blocks)
        codes = self.external_quantizer.codes[candidate_ids]
        distances = self.external_quantizer.estimate_distances(query, codes=codes)
        # Baselines have no error bound: lower/upper bounds degenerate to the
        # estimate itself, so only fixed-candidate re-ranking is meaningful.
        estimate = DistanceEstimate(
            distances=distances,
            lower_bounds=distances.copy(),
            upper_bounds=distances.copy(),
            inner_products=np.zeros_like(distances),
        )
        return candidate_ids, estimate

    def search(self, query: np.ndarray, k: int, *, nprobe: int = 8) -> SearchResult:
        """Answer one ANN query.

        Parameters
        ----------
        query:
            Raw query vector.
        k:
            Number of neighbours to return.
        nprobe:
            Number of IVF clusters to scan.
        """
        if self._ivf is None or self._flat is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        if nprobe < 1:
            raise InvalidParameterError("nprobe must be >= 1")
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self._flat.dim:
            raise InvalidParameterError(
                f"query has {vec.shape[0]} dimensions, searcher expects "
                f"{self._flat.dim}"
            )
        cluster_ids = self._ivf.probe(vec, nprobe, metric=self._metric)
        if self.quantizer_kind == "rabitq":
            candidate_ids, estimate = self._estimate_rabitq(vec, cluster_ids)
        else:
            candidate_ids, estimate = self._estimate_external(vec, cluster_ids)
        ids, dists, n_exact = self.reranker.rerank(
            vec, candidate_ids, estimate, self._flat, k, metric=self._metric
        )
        return SearchResult(
            ids=self._to_external_ids(ids),
            distances=dists,
            n_candidates=int(candidate_ids.shape[0]),
            n_exact=n_exact,
        )

    def _to_external_ids(self, slots: np.ndarray) -> np.ndarray:
        """Map internal slot positions to the stable external ids."""
        assert self._ids is not None
        return self._ids[np.asarray(slots, dtype=np.intp)]

    def _estimate_rabitq_batch(
        self, query_mat: np.ndarray, probes: np.ndarray
    ) -> list[tuple[np.ndarray, DistanceEstimate]]:
        """Grouped-by-cluster fused batch estimation for all queries at once.

        Each probed cluster's contiguous code block is scanned once for the
        whole group of queries probing it (one integer GEMM + one fused
        estimator transform per cluster), and the per-cluster result rows
        are scattered directly into flat per-query candidate buffers at
        precomputed offsets — the query's probed-cluster order, exactly the
        concatenation order of the sequential path, with no intermediate
        stacking or per-query concatenation.  Per-cluster query groups are
        processed in ascending query order so each cluster's
        randomized-rounding stream is consumed in the same order as
        sequential calls (with the prepared-query cache enabled, the
        sequential cache bookkeeping — hits, misses and FIFO evictions — is
        simulated in that same global order), keeping batch output
        bit-identical.
        """
        arena = self._arena
        assert arena is not None and self._live is not None
        n_queries = query_mat.shape[0]
        sizes = arena.sizes
        code_length = arena.code_length
        code_bits = arena.bits_per_dim
        eps0 = float(self.rabitq_config.epsilon0)
        sqrt_d = np.sqrt(float(code_length))

        size_mat = sizes[probes]
        query_totals = size_mat.sum(axis=1)
        qoff = np.zeros(n_queries + 1, dtype=np.int64)
        np.cumsum(query_totals, out=qoff[1:])
        within = np.zeros_like(size_mat)
        if size_mat.shape[1] > 1:
            np.cumsum(size_mat[:, :-1], axis=1, out=within[:, 1:])
        total = int(qoff[-1])

        dist_flat = np.empty(total, dtype=np.float64)
        lb_flat = np.empty(total, dtype=np.float64)
        ub_flat = np.empty(total, dtype=np.float64)
        ip_flat = np.empty(total, dtype=np.float64)
        cand_flat = np.empty(total, dtype=np.int64)

        # Group (query, probe position) pairs by cluster.  With the
        # prepared-query cache enabled this is one global pass over the
        # sequential visiting order which also performs the cache
        # bookkeeping (placeholders for misses, FIFO eviction) exactly as a
        # sequential loop would; without the cache, grouping is a single
        # stable argsort of the flattened probe matrix (stable => ascending
        # query order inside every cluster group, preserving per-cluster
        # stream consumption order).
        cache_on = self.query_cache_size > 0
        cache = self._prepared_cache
        # cluster id -> (query indices, probe positions, entries or None)
        groups: list[tuple[int, np.ndarray, np.ndarray, list | None]] = []
        if cache_on:
            probe_lists = probes.tolist()
            grouped: dict[int, list[tuple[int, int, _PreparedClusterQuery]]] = {}
            misses: dict[int, list[tuple[int, _PreparedClusterQuery]]] = {}
            pending: set[int] = set()  # placeholders scheduled in this call
            key_bytes = [query_mat[qi].tobytes() for qi in range(n_queries)]
            for qi in range(n_queries):
                for j, cid in enumerate(probe_lists[qi]):
                    if sizes[cid] == 0:
                        continue
                    key = (key_bytes[qi], cid)
                    entry = cache.get(key)
                    unfilled = entry is not None and entry.codes_f64 is None
                    if entry is None or (unfilled and id(entry) not in pending):
                        # A miss, or an unfilled placeholder left by a
                        # *different* call: schedule a fresh entry of our
                        # own (replacing a foreign placeholder in place
                        # keeps its FIFO position) — fill paths never
                        # write into another call's entry objects.
                        entry = _PreparedClusterQuery()
                        cache[key] = entry
                        while len(cache) > self.query_cache_size:
                            cache.popitem(last=False)
                        pending.add(id(entry))
                        misses.setdefault(cid, []).append((qi, entry))
                    grouped.setdefault(cid, []).append((qi, j, entry))
            # Vectorized preparation of the cache misses, one call per
            # cluster in ascending query order.
            for cid, missing in misses.items():
                rows = np.asarray([qi for qi, _ in missing], dtype=np.intp)
                quantized, query_norms = self._prepare_cluster_queries(
                    query_mat[rows], cid
                )
                codes_f = quantized.codes.astype(np.float64)
                for row, (_, entry) in enumerate(missing):
                    entry.delta = float(quantized.delta[row])
                    entry.lower = float(quantized.lower[row])
                    entry.sum_codes_f = float(quantized.sum_codes[row])
                    entry.query_norm = float(query_norms[row])
                    entry.codes_f64 = codes_f[row].copy()  # sentinel last
            for cid, pairs in grouped.items():
                groups.append(
                    (
                        cid,
                        np.asarray([qi for qi, _, _ in pairs], dtype=np.intp),
                        np.asarray([j for _, j, _ in pairs], dtype=np.intp),
                        [entry for _, _, entry in pairs],
                    )
                )
        else:
            width = probes.shape[1]
            flat_cids = probes.ravel()
            order = np.argsort(flat_cids, kind="stable")
            sorted_cids = flat_cids[order]
            starts = np.flatnonzero(
                np.diff(sorted_cids, prepend=sorted_cids[:1] - 1)
            )
            ends = np.append(starts[1:], sorted_cids.shape[0])
            for seg_start, seg_end in zip(starts.tolist(), ends.tolist()):
                cid = int(sorted_cids[seg_start])
                if sizes[cid] == 0:
                    continue
                pair_idx = order[seg_start:seg_end]
                groups.append(
                    (cid, pair_idx // width, pair_idx % width, None)
                )

        mode = self._estimation_mode
        max_size = int(size_mat.max()) if size_mat.size else 0
        bits_f = (
            self._scratch_get("bits_f", max_size * code_length, np.float64)[
                : max_size * code_length
            ].reshape(max_size, code_length)
            if max_size and mode == "gemm"
            else np.empty((0, code_length), dtype=np.float64)
        )

        # Similarity metrics: per-query raw norms (cosine) and, inside the
        # group loop, per-(query, cluster) centroid offsets — each scalar
        # computed with the very operations of the sequential path, so
        # batch ≡ sequential holds bit for bit under every metric.
        similarity = self._metric.higher_is_better
        qraw_all: np.ndarray | None = None
        if self._metric.name == "cosine":
            qraw_all = np.empty(n_queries, dtype=np.float64)
            for qi in range(n_queries):
                row = query_mat[qi]
                qraw_all[qi] = float(np.sqrt(np.dot(row, row)))

        for cid, qis, js, entries in groups:
            start, end = arena.cluster_range(cid)
            size = end - start
            n_group = qis.shape[0]
            codes_mat = luts_stack = None
            lut8_tables = lut8_scales = lut8_offsets = None
            if entries is not None:
                delta = np.empty(n_group, dtype=np.float64)
                lower = np.empty(n_group, dtype=np.float64)
                sums = np.empty(n_group, dtype=np.float64)
                query_norms = np.empty(n_group, dtype=np.float64)
                for row, entry in enumerate(entries):
                    delta[row] = entry.delta
                    lower[row] = entry.lower
                    sums[row] = entry.sum_codes_f
                    query_norms[row] = entry.query_norm
                if mode == "gemm":
                    codes_mat = np.empty(
                        (n_group, code_length), dtype=np.float64
                    )
                    for row, entry in enumerate(entries):
                        codes_mat[row] = entry.codes_f64
                elif mode == "lut":
                    luts_stack = np.stack(
                        [self._query_luts(entry) for entry in entries]
                    )
                else:
                    per_entry = [
                        self._query_luts_uint8(entry) for entry in entries
                    ]
                    lut8_tables = np.stack([t for t, _, _ in per_entry])
                    lut8_scales = np.asarray(
                        [s for _, s, _ in per_entry], dtype=np.float64
                    )
                    lut8_offsets = np.asarray(
                        [o for _, _, o in per_entry], dtype=np.float64
                    )
            else:
                quantized, query_norms = self._prepare_cluster_queries(
                    query_mat[qis], cid
                )
                delta = quantized.delta
                lower = quantized.lower
                sums = quantized.sum_codes.astype(np.float64)
                if mode == "gemm":
                    codes_mat = quantized.codes.astype(np.float64)
                else:
                    # Batched LUT construction: exact integers, so each
                    # slice equals the per-query build bit for bit.
                    luts_stack = build_query_luts_batch(quantized.codes)
                    if mode == "lut8":
                        n_segments = luts_stack.shape[1]
                        lut8_tables = np.empty(
                            luts_stack.shape, dtype=np.uint8
                        )
                        lut8_scales = np.empty(n_group, dtype=np.float64)
                        lut8_offsets = np.empty(n_group, dtype=np.float64)
                        for row in range(n_group):
                            (
                                lut8_tables[row],
                                lut8_scales[row],
                                lut8_offsets[row],
                            ) = quantize_luts_to_uint8(luts_stack[row])

            # Integer inner-product matrix for the whole query group on the
            # cluster's contiguous slice: one exact float64 GEMM on the
            # unpacked codes, or the fast-scan accumulation over the 4-bit
            # segment ids ("lut" produces the same exact integers; "lut8"
            # the reduced-precision approximation) — each row bit-identical
            # to the corresponding sequential single-query kernel.
            if mode == "gemm":
                np.copyto(
                    bits_f[:size], arena.bits[start:end], casting="unsafe"
                )
                integer_dot = codes_mat @ bits_f[:size].T
            elif mode == "lut":
                integer_dot = lut_accumulate_batch(
                    arena.segs[start:end], luts_stack
                )
            else:
                integer_dot = lut_accumulate_uint8_batch(
                    arena.segs[start:end],
                    lut8_tables,
                    lut8_scales,
                    lut8_offsets,
                )

            # Per-query affine undo of the scalar quantization (Eq. 19-20);
            # identical elementwise arithmetic to the single-query path
            # (multi-bit codes use the shared multi-bit undo, broadcast
            # per query — still the sequential path's elementwise order).
            pop = arena.consts[CONST_POPCOUNT, start:end]
            if code_bits > 1:
                quantized_dot = undo_query_quantization_multibit(
                    integer_dot,
                    pop[None, :],
                    arena.consts[-1, start:end][None, :],
                    delta[:, None],
                    lower[:, None],
                    sums[:, None],
                    code_length,
                    code_bits,
                )
            else:
                quantized_dot = undo_query_quantization(
                    integer_dot,
                    pop[None, :],
                    delta[:, None],
                    lower[:, None],
                    sums[:, None],
                    code_length,
                )
            # Per-(query, cluster) rounding term for multi-bit bounds —
            # the same 0.5 * eps0 * Δ scalars the sequential path fills
            # per candidate, broadcast as a column.
            query_rounding = (
                0.5 * eps0 * delta[:, None] if code_bits > 1 else None
            )
            if not similarity:
                estimate = fused_estimate(
                    quantized_dot,
                    arena.cluster_consts(cid),
                    query_norms[:, None],
                    query_rounding=query_rounding,
                )
            else:
                centroid = self._ivf.centroids[cid]
                csq = float(self._ivf.centroid_sq_norms[cid])
                offs = np.empty((n_group, 1), dtype=np.float64)
                for row, qi in enumerate(qis.tolist()):
                    offs[row, 0] = float(np.dot(query_mat[qi], centroid)) - csq
                estimate = fused_estimate(
                    quantized_dot,
                    arena.cluster_consts(cid),
                    query_norms[:, None],
                    metric=self._metric,
                    query_offset=offs,
                    query_raw_norm=(
                        qraw_all[qis][:, None] if qraw_all is not None else None
                    ),
                    query_rounding=query_rounding,
                )

            # Scatter each group row into its query's flat candidate range
            # (probe order == the sequential concatenation order).
            dest = (qoff[qis] + within[qis, js])[:, None] + np.arange(size)
            dist_flat[dest] = estimate.distances
            lb_flat[dest] = estimate.lower_bounds
            ub_flat[dest] = estimate.upper_bounds
            ip_flat[dest] = estimate.inner_products
            cand_flat[dest] = arena.slots[start:end][None, :]

        # Per-query assembly: zero-copy views into the flat buffers, with
        # tombstones masked out of the already-computed estimates exactly as
        # on the sequential path (skipped wholesale when nothing is dead).
        live = self._live
        any_dead = self._n_dead > 0
        per_query: list[tuple[np.ndarray, DistanceEstimate]] = []
        for qi in range(n_queries):
            lo, hi = int(qoff[qi]), int(qoff[qi + 1])
            if lo == hi:
                per_query.append(_empty_estimate())
                continue
            cand = cand_flat[lo:hi]
            mask = live[cand] if any_dead else None
            if mask is None or mask.all():
                per_query.append(
                    (
                        cand,
                        DistanceEstimate(
                            distances=dist_flat[lo:hi],
                            lower_bounds=lb_flat[lo:hi],
                            upper_bounds=ub_flat[lo:hi],
                            inner_products=ip_flat[lo:hi],
                        ),
                    )
                )
            elif not mask.any():
                per_query.append(_empty_estimate())
            else:
                per_query.append(
                    (
                        cand[mask],
                        DistanceEstimate(
                            distances=dist_flat[lo:hi][mask],
                            lower_bounds=lb_flat[lo:hi][mask],
                            upper_bounds=ub_flat[lo:hi][mask],
                            inner_products=ip_flat[lo:hi][mask],
                        ),
                    )
                )
        return per_query

    def search_batch(
        self, queries: np.ndarray, k: int, *, nprobe: int = 8
    ) -> BatchSearchResult:
        """Answer a batch of ANN queries with the vectorized engine.

        Probing, query preparation and distance estimation are batched
        (queries are grouped by probed cluster so each cluster's code block
        is scanned once per query group); re-ranking runs per query.
        The results — ids *and* distances — are element-wise identical to
        ``[self.search(q, k, nprobe=nprobe) for q in queries]``; prefer this
        entry point whenever more than a handful of queries are available at
        once.

        Parameters
        ----------
        queries:
            Raw query matrix, shape ``(n_queries, dim)``.
        k:
            Number of neighbours to return per query.
        nprobe:
            Number of IVF clusters to scan per query.
        """
        if self._ivf is None or self._flat is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        if nprobe < 1:
            raise InvalidParameterError("nprobe must be >= 1")
        query_mat = as_float_matrix(queries, "queries")
        n_queries = query_mat.shape[0]
        if n_queries > 0 and query_mat.shape[1] != self._flat.dim:
            raise InvalidParameterError(
                f"queries have {query_mat.shape[1]} dimensions, searcher "
                f"expects {self._flat.dim}"
            )
        if n_queries == 0:
            return BatchSearchResult(
                ids=(),
                distances=(),
                n_candidates=np.empty(0, dtype=np.int64),
                n_exact=np.empty(0, dtype=np.int64),
            )

        probes = self._ivf.probe_batch(query_mat, nprobe, metric=self._metric)

        # Bound the live (query, candidate) estimate tensors by processing
        # very large batches in query chunks, sized from the *actual* probed
        # bucket sizes (an average would under-estimate on skewed data, where
        # queries gravitate to the largest clusters).  Chunks run in
        # ascending query order, so per-cluster RNG consumption — and
        # therefore every result — is unchanged: this is purely a peak-memory
        # cap.
        pair_counts = self._ivf.bucket_sizes()[probes].sum(axis=1)
        ids_out: list[np.ndarray] = []
        dists_out: list[np.ndarray] = []
        n_candidates: list[int] = []
        n_exact: list[int] = []
        lo = 0
        while lo < n_queries:
            hi = lo + 1
            budget = _SEARCH_BATCH_MAX_PAIRS - int(pair_counts[lo])
            while hi < n_queries and int(pair_counts[hi]) <= budget:
                budget -= int(pair_counts[hi])
                hi += 1
            chunk_queries = query_mat[lo:hi]
            chunk_probes = probes[lo:hi]
            if self.quantizer_kind == "rabitq":
                per_query = self._estimate_rabitq_batch(chunk_queries, chunk_probes)
            else:
                per_query = [
                    self._estimate_external(chunk_queries[qi], chunk_probes[qi])
                    for qi in range(hi - lo)
                ]
            candidate_lists = [candidate_ids for candidate_ids, _ in per_query]
            reranked = self.reranker.rerank_batch(
                chunk_queries,
                candidate_lists,
                [estimate for _, estimate in per_query],
                self._flat,
                k,
                metric=self._metric,
            )
            ids_out.extend(self._to_external_ids(ids) for ids, _, _ in reranked)
            dists_out.extend(dists for _, dists, _ in reranked)
            n_candidates.extend(ids.shape[0] for ids in candidate_lists)
            n_exact.extend(exact for _, _, exact in reranked)
            lo = hi
        return BatchSearchResult(
            ids=tuple(ids_out),
            distances=tuple(dists_out),
            n_candidates=np.asarray(n_candidates, dtype=np.int64),
            n_exact=np.asarray(n_exact, dtype=np.int64),
        )


__all__ = ["IVFQuantizedSearcher", "SearchResult", "BatchSearchResult"]
