"""IVF + quantizer ANN search pipelines (Section 4 of the paper).

:class:`IVFQuantizedSearcher` couples the IVF coarse index with a quantizer
and a re-ranking strategy:

* **IVF-RaBitQ** — per-cluster RaBitQ quantizers sharing a single rotation;
  the cluster centroid is the normalization centroid, and candidates are
  re-ranked with the error-bound rule (no tuning).
* **IVF-PQ / IVF-OPQ** — a PQ or OPQ quantizer trained globally; candidates
  are re-ranked with a fixed candidate count (the paper sweeps 500 / 1000 /
  2500).

Two query entry points are provided:

* :meth:`IVFQuantizedSearcher.search` — one query at a time, returning a
  :class:`SearchResult` with the retrieved ids, their distances, and cost
  counters (number of estimated distances and of exact re-ranking
  computations) so the benchmark harness can report both accuracy and work.
* :meth:`IVFQuantizedSearcher.search_batch` — the vectorized batch engine.
  IVF probing runs once for the whole query matrix, queries are grouped by
  probed cluster so each cluster's packed code matrix is scanned once per
  query group (via the multi-query popcount kernel), and re-ranking runs
  per query on the assembled estimates.  The returned
  :class:`BatchSearchResult` carries per-query results plus aggregate cost
  counters, and is guaranteed to be element-wise identical (ids *and*
  distances) to running :meth:`search` in a loop — batching changes
  throughput, never answers.

The index is *mutable* after :meth:`IVFQuantizedSearcher.fit` (the index
lifecycle required by a serving deployment):

* :meth:`IVFQuantizedSearcher.insert` encodes new vectors incrementally —
  nearest-centroid assignment against the existing IVF centroids, RaBitQ
  encoding against the fitted rotation and per-cluster centroids — without
  re-clustering or re-encoding anything already stored.
* :meth:`IVFQuantizedSearcher.delete` removes vectors by id using
  tombstones; deleted vectors stop appearing in results immediately, and
  :meth:`IVFQuantizedSearcher.compact` (triggered automatically once the
  tombstone fraction reaches ``compact_threshold``) reclaims their storage.
  ``insert`` and ``compact`` require ``quantizer_kind="rabitq"``; searchers
  wrapping an external baseline quantizer support tombstone deletion only.
* Results always report *external* ids: a vector keeps its id across any
  interleaving of inserts, deletes and compactions.  After a fresh ``fit``
  the external ids are ``0 .. n-1`` (the row positions), so existing code
  is unaffected.

Tombstone filtering is applied identically on the sequential and batch
paths (the full per-cluster estimate is always computed, then dead rows are
masked out), so the batch ≡ sequential guarantee holds at every point of the
lifecycle.  A fitted searcher — including tombstones, id mapping and the
cluster quantizers' random streams — can be serialized with
:func:`repro.io.persistence.save_searcher` and reloaded bit-identically with
:func:`repro.io.persistence.load_searcher`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.core.config import RaBitQConfig
from repro.core.estimator import DistanceEstimate
from repro.core.quantizer import RaBitQ
from repro.core.rotation import make_rotation
from repro.exceptions import (
    DimensionMismatchError,
    InvalidParameterError,
    NotFittedError,
)
from repro.index.flat import FlatIndex
from repro.index.ivf import IVFIndex
from repro.index.rerank import ErrorBoundReranker, Reranker
from repro.substrates.linalg import as_float_matrix
from repro.substrates.rng import RngLike, ensure_rng


#: Cap on the number of live (query, candidate) estimate pairs per
#: processed query chunk in :meth:`IVFQuantizedSearcher.search_batch`
#: (4 float64 fields => roughly 256 MiB at this setting).
_SEARCH_BATCH_MAX_PAIRS = 8_000_000


@dataclass(frozen=True)
class SearchResult:
    """Result of one ANN query.

    Attributes
    ----------
    ids:
        Retrieved vector ids (ascending reported distance).
    distances:
        Squared distances of the retrieved vectors (exact when re-ranking
        computed them, estimated otherwise).
    n_candidates:
        Number of candidates whose distance was *estimated* (i.e. the total
        size of the probed clusters).
    n_exact:
        Number of candidates whose *exact* distance was computed during
        re-ranking.
    """

    ids: np.ndarray
    distances: np.ndarray
    n_candidates: int
    n_exact: int


@dataclass(frozen=True)
class BatchSearchResult:
    """Results of a batch of ANN queries, with aggregate cost counters.

    Iterating (or indexing) yields one :class:`SearchResult` per query, so
    code written against the per-query API works unchanged on batch output.

    Attributes
    ----------
    ids:
        Per-query retrieved ids (ascending reported distance).
    distances:
        Per-query squared distances of the retrieved vectors.
    n_candidates:
        Per-query number of estimated candidates, shape ``(n_queries,)``.
    n_exact:
        Per-query number of exact re-ranking computations, shape
        ``(n_queries,)``.
    """

    ids: tuple[np.ndarray, ...]
    distances: tuple[np.ndarray, ...]
    n_candidates: np.ndarray
    n_exact: np.ndarray

    def __len__(self) -> int:
        return len(self.ids)

    def __getitem__(self, i: int) -> SearchResult:
        return SearchResult(
            ids=self.ids[i],
            distances=self.distances[i],
            n_candidates=int(self.n_candidates[i]),
            n_exact=int(self.n_exact[i]),
        )

    def __iter__(self) -> Iterator[SearchResult]:
        for i in range(len(self.ids)):
            yield self[i]

    @property
    def total_candidates(self) -> int:
        """Total number of estimated candidates across the batch."""
        return int(self.n_candidates.sum())

    @property
    def total_exact(self) -> int:
        """Total number of exact re-ranking computations across the batch."""
        return int(self.n_exact.sum())


class IVFQuantizedSearcher:
    """ANN search pipeline combining IVF, a quantizer and a re-ranker.

    Parameters
    ----------
    quantizer_kind:
        ``"rabitq"`` for per-cluster RaBitQ (the paper's method) or
        ``"external"`` when an already-constructed baseline quantizer (PQ,
        OPQ, ...) trained on the full dataset is supplied via
        ``external_quantizer``.
    n_clusters:
        Number of IVF clusters (``None`` = size-scaled default).
    rabitq_config:
        Configuration of the per-cluster RaBitQ quantizers.
    external_quantizer:
        A fitted-on-demand baseline quantizer exposing ``fit`` /
        ``estimate_distances`` (only used when ``quantizer_kind="external"``).
    reranker:
        Re-ranking strategy; defaults to the error-bound rule for RaBitQ and
        must be supplied explicitly for baselines.
    rng:
        Seed or generator for the IVF clustering.
    compact_threshold:
        Tombstone fraction at which :meth:`delete` triggers an automatic
        :meth:`compact` (``None`` disables auto-compaction; explicit
        ``compact()`` calls still work).
    """

    def __init__(
        self,
        quantizer_kind: str = "rabitq",
        *,
        n_clusters: int | None = None,
        rabitq_config: Optional[RaBitQConfig] = None,
        external_quantizer=None,
        reranker: Optional[Reranker] = None,
        rng: RngLike = None,
        compact_threshold: float | None = 0.25,
    ) -> None:
        if quantizer_kind not in ("rabitq", "external"):
            raise InvalidParameterError(
                "quantizer_kind must be 'rabitq' or 'external'"
            )
        if quantizer_kind == "external" and external_quantizer is None:
            raise InvalidParameterError(
                "external_quantizer must be provided when quantizer_kind='external'"
            )
        if compact_threshold is not None and not 0.0 < compact_threshold <= 1.0:
            raise InvalidParameterError(
                "compact_threshold must lie in (0, 1] or be None"
            )
        self.quantizer_kind = quantizer_kind
        self.n_clusters = n_clusters
        self.rabitq_config = (
            rabitq_config if rabitq_config is not None else RaBitQConfig(seed=0)
        )
        self.external_quantizer = external_quantizer
        self.reranker: Reranker = (
            reranker if reranker is not None else ErrorBoundReranker()
        )
        self.compact_threshold = compact_threshold
        self._rng = ensure_rng(rng)
        self._ivf: IVFIndex | None = None
        self._flat: FlatIndex | None = None
        self._cluster_quantizers: list[RaBitQ] | None = None
        self._shared_rotation = None
        # Lifecycle state: slot -> external id, external id -> slot, and the
        # per-slot tombstone mask (True = live).
        self._ids: np.ndarray | None = None
        self._id_to_slot: dict[int, int] = {}
        self._live: np.ndarray | None = None
        self._n_dead = 0
        self._next_id = 0

    # ------------------------------------------------------------------ #
    # Index phase
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._ivf is not None

    @property
    def ivf(self) -> IVFIndex:
        """The underlying IVF coarse index."""
        if self._ivf is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        return self._ivf

    @property
    def flat(self) -> FlatIndex:
        """The exact index used for re-ranking."""
        if self._flat is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        return self._flat

    def fit(self, data: np.ndarray) -> "IVFQuantizedSearcher":
        """Build the IVF index and train the quantizer(s) on ``data``.

        External ids are assigned positionally (``0 .. n-1``); they remain
        stable across later :meth:`insert` / :meth:`delete` /
        :meth:`compact` calls.
        """
        mat = as_float_matrix(data, "data")
        self._flat = FlatIndex(mat)
        self._ivf = IVFIndex(self.n_clusters, rng=self._rng).fit(mat)

        if self.quantizer_kind == "rabitq":
            # All clusters share one rotation so that the query only needs to
            # be rotated once per cluster-centroid frame.
            code_length = self.rabitq_config.resolve_code_length(mat.shape[1])
            shared_rotation = make_rotation(
                self.rabitq_config.rotation, code_length, self._rng
            )
            self._shared_rotation = shared_rotation
            quantizers: list[RaBitQ] = []
            for bucket in self._ivf.buckets:
                if len(bucket) == 0:
                    quantizers.append(None)  # type: ignore[arg-type]
                    continue
                quantizer = RaBitQ(self.rabitq_config)
                quantizer.fit(
                    mat[bucket.vector_ids],
                    centroid=self._ivf.centroids[bucket.centroid_id],
                    rotation=shared_rotation,
                )
                quantizers.append(quantizer)
            self._cluster_quantizers = quantizers
        else:
            self.external_quantizer.fit(mat)
        n = mat.shape[0]
        self._ids = np.arange(n, dtype=np.int64)
        self._id_to_slot = {i: i for i in range(n)}
        self._live = np.ones(n, dtype=bool)
        self._n_dead = 0
        self._next_id = n
        return self

    # ------------------------------------------------------------------ #
    # Mutation phase (index lifecycle)
    # ------------------------------------------------------------------ #

    @property
    def n_total(self) -> int:
        """Number of stored slots, including tombstoned ones."""
        if self._live is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        return int(self._live.shape[0])

    @property
    def n_deleted(self) -> int:
        """Number of tombstoned (deleted but not yet compacted) vectors."""
        if self._live is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        return self._n_dead

    @property
    def n_live(self) -> int:
        """Number of searchable vectors."""
        return self.n_total - self.n_deleted

    @property
    def live_ids(self) -> np.ndarray:
        """External ids of all searchable vectors (ascending slot order)."""
        if self._ids is None or self._live is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        return self._ids[self._live].copy()

    def insert(
        self, vectors: np.ndarray, ids: np.ndarray | None = None
    ) -> np.ndarray:
        """Add new vectors to the fitted index and return their external ids.

        Each vector is assigned to the nearest existing IVF centroid and
        RaBitQ-encoded against the fitted rotation and that cluster's
        centroid — no re-clustering and no re-encoding of existing vectors.
        Estimates for previously stored vectors are bit-identical before and
        after the insert.

        Parameters
        ----------
        vectors:
            New raw vectors, shape ``(n_new, dim)`` (or a single vector).
        ids:
            Optional external ids for the new vectors; must be unique and
            not currently present.  Default: consecutive fresh ids.
        """
        if self._ivf is None or self._flat is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        if self.quantizer_kind != "rabitq":
            raise InvalidParameterError(
                "insert is only supported for quantizer_kind='rabitq'"
            )
        mat = as_float_matrix(vectors, "vectors")
        n_new = mat.shape[0]
        if n_new == 0:
            return np.empty(0, dtype=np.int64)
        if mat.shape[1] != self._flat.dim:
            raise DimensionMismatchError(
                f"vectors have dimension {mat.shape[1]}, index expects "
                f"{self._flat.dim}"
            )
        if ids is None:
            new_ids = np.arange(self._next_id, self._next_id + n_new, dtype=np.int64)
        else:
            new_ids = np.asarray(ids, dtype=np.int64).reshape(-1)
            if new_ids.shape[0] != n_new:
                raise InvalidParameterError(
                    "need exactly one external id per inserted vector"
                )
            if np.unique(new_ids).shape[0] != n_new:
                raise InvalidParameterError("inserted ids must be unique")
            collisions = [i for i in new_ids.tolist() if i in self._id_to_slot]
            if collisions:
                raise InvalidParameterError(
                    f"ids already present in the index: {collisions[:5]}"
                )

        cluster_ids = self._ivf.assign(mat)
        slots = self._flat.add(mat)
        self._ivf.append(slots, cluster_ids)
        assert self._cluster_quantizers is not None
        for cid in np.unique(cluster_ids):
            rows = np.flatnonzero(cluster_ids == cid)
            block = mat[rows]
            quantizer = self._cluster_quantizers[int(cid)]
            if quantizer is None:
                # The bucket was empty at fit time (or emptied by a compact):
                # build its quantizer now, sharing the fitted rotation and
                # using the cluster centroid, exactly as fit() would have.
                quantizer = RaBitQ(self.rabitq_config)
                quantizer.fit(
                    block,
                    centroid=self._ivf.centroids[int(cid)],
                    rotation=self._shared_rotation,
                )
                self._cluster_quantizers[int(cid)] = quantizer
            else:
                quantizer.add(block)

        assert self._ids is not None and self._live is not None
        self._ids = np.concatenate([self._ids, new_ids])
        self._live = np.concatenate([self._live, np.ones(n_new, dtype=bool)])
        for slot, ext in zip(slots.tolist(), new_ids.tolist()):
            self._id_to_slot[ext] = slot
        self._next_id = max(self._next_id, int(new_ids.max()) + 1)
        return new_ids

    def delete(self, ids: np.ndarray | int) -> int:
        """Tombstone the given external ids and return how many were removed.

        Deleted vectors stop appearing in search results immediately.  For
        RaBitQ searchers their storage is reclaimed by :meth:`compact`,
        which runs automatically once the tombstone fraction reaches
        ``compact_threshold``; external-quantizer searchers support
        tombstoning only (their baseline quantizers cannot re-index codes,
        so compaction is unavailable and tombstones persist).  Unknown (or
        already-deleted) ids raise :class:`InvalidParameterError`;
        duplicate ids in the request are collapsed.
        """
        if self._ivf is None or self._live is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        requested = np.unique(np.asarray(ids, dtype=np.int64).reshape(-1))
        slots = []
        missing = []
        for ext in requested.tolist():
            slot = self._id_to_slot.get(ext)
            if slot is None:
                missing.append(ext)
            else:
                slots.append((ext, slot))
        if missing:
            raise InvalidParameterError(
                f"cannot delete unknown or already-deleted ids: {missing[:5]}"
            )
        for ext, slot in slots:
            del self._id_to_slot[ext]
            self._live[slot] = False
        self._n_dead += len(slots)
        if (
            self.compact_threshold is not None
            and self.quantizer_kind == "rabitq"
            and self._n_dead >= self.compact_threshold * self._live.shape[0]
        ):
            self.compact()
        return len(slots)

    def compact(self) -> int:
        """Physically drop tombstoned vectors; return the number reclaimed.

        Dead rows are removed from the flat index, the inverted lists and
        the per-cluster code matrices, and the surviving slots are renumbered
        contiguously.  External ids are untouched, and because every removed
        row is row-local in the quantized datasets, search results (ids,
        distances *and* cost counters) are identical before and after a
        compaction.
        """
        if self._ivf is None or self._flat is None or self._live is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        if self.quantizer_kind != "rabitq":
            raise InvalidParameterError(
                "compact is only supported for quantizer_kind='rabitq'"
            )
        if self._n_dead == 0:
            return 0
        keep = self._live.copy()
        assert self._cluster_quantizers is not None and self._ids is not None
        for cid, bucket in enumerate(self._ivf.buckets):
            quantizer = self._cluster_quantizers[cid]
            if quantizer is None or len(bucket) == 0:
                continue
            mask = keep[bucket.vector_ids]
            if mask.all():
                continue
            if not mask.any():
                self._cluster_quantizers[cid] = None
                continue
            quantizer.keep_rows(mask)
        self._ivf.keep_rows(keep)
        self._flat.keep_rows(keep)
        self._ids = self._ids[keep]
        self._live = np.ones(self._ids.shape[0], dtype=bool)
        self._id_to_slot = {
            int(ext): slot for slot, ext in enumerate(self._ids.tolist())
        }
        reclaimed = self._n_dead
        self._n_dead = 0
        return reclaimed

    # ------------------------------------------------------------------ #
    # Query phase
    # ------------------------------------------------------------------ #

    def _estimate_rabitq(
        self, query: np.ndarray, cluster_ids: np.ndarray
    ) -> tuple[np.ndarray, DistanceEstimate]:
        """Estimate distances for all live vectors in the probed clusters.

        Tombstoned rows are masked out *after* the full per-cluster estimate
        (never skipped before it): this keeps the per-cluster randomized
        query-rounding streams — and with them the batch ≡ sequential
        guarantee — independent of the deletion pattern.
        """
        assert self._cluster_quantizers is not None and self._ivf is not None
        assert self._live is not None
        live = self._live
        id_blocks: list[np.ndarray] = []
        dist_blocks: list[np.ndarray] = []
        lower_blocks: list[np.ndarray] = []
        upper_blocks: list[np.ndarray] = []
        ip_blocks: list[np.ndarray] = []
        for cid in cluster_ids:
            bucket = self._ivf.buckets[int(cid)]
            quantizer = self._cluster_quantizers[int(cid)]
            if quantizer is None or len(bucket) == 0:
                continue
            estimate = quantizer.estimate_distances(query)
            mask = live[bucket.vector_ids]
            if mask.all():
                id_blocks.append(bucket.vector_ids)
                dist_blocks.append(estimate.distances)
                lower_blocks.append(estimate.lower_bounds)
                upper_blocks.append(estimate.upper_bounds)
                ip_blocks.append(estimate.inner_products)
                continue
            if not mask.any():
                continue
            id_blocks.append(bucket.vector_ids[mask])
            dist_blocks.append(estimate.distances[mask])
            lower_blocks.append(estimate.lower_bounds[mask])
            upper_blocks.append(estimate.upper_bounds[mask])
            ip_blocks.append(estimate.inner_products[mask])
        if not id_blocks:
            empty = np.empty(0, dtype=np.float64)
            return np.empty(0, dtype=np.int64), DistanceEstimate(
                distances=empty,
                lower_bounds=empty.copy(),
                upper_bounds=empty.copy(),
                inner_products=empty.copy(),
            )
        candidate_ids = np.concatenate(id_blocks)
        estimate = DistanceEstimate(
            distances=np.concatenate(dist_blocks),
            lower_bounds=np.concatenate(lower_blocks),
            upper_bounds=np.concatenate(upper_blocks),
            inner_products=np.concatenate(ip_blocks),
        )
        return candidate_ids, estimate

    def _estimate_external(
        self, query: np.ndarray, cluster_ids: np.ndarray
    ) -> tuple[np.ndarray, DistanceEstimate]:
        """Estimate distances with the external (PQ/OPQ-style) quantizer."""
        assert self._ivf is not None and self._live is not None
        live = self._live
        blocks: list[np.ndarray] = []
        for cid in cluster_ids:
            ids = self._ivf.buckets[int(cid)].vector_ids
            if ids.shape[0] == 0:
                continue
            mask = live[ids]
            if not mask.any():
                continue
            blocks.append(ids if mask.all() else ids[mask])
        if not blocks:
            empty = np.empty(0, dtype=np.float64)
            return np.empty(0, dtype=np.int64), DistanceEstimate(
                distances=empty,
                lower_bounds=empty.copy(),
                upper_bounds=empty.copy(),
                inner_products=empty.copy(),
            )
        candidate_ids = np.concatenate(blocks)
        codes = self.external_quantizer.codes[candidate_ids]
        distances = self.external_quantizer.estimate_distances(query, codes=codes)
        # Baselines have no error bound: lower/upper bounds degenerate to the
        # estimate itself, so only fixed-candidate re-ranking is meaningful.
        estimate = DistanceEstimate(
            distances=distances,
            lower_bounds=distances.copy(),
            upper_bounds=distances.copy(),
            inner_products=np.zeros_like(distances),
        )
        return candidate_ids, estimate

    def search(self, query: np.ndarray, k: int, *, nprobe: int = 8) -> SearchResult:
        """Answer one ANN query.

        Parameters
        ----------
        query:
            Raw query vector.
        k:
            Number of neighbours to return.
        nprobe:
            Number of IVF clusters to scan.
        """
        if self._ivf is None or self._flat is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        cluster_ids = self._ivf.probe(vec, nprobe)
        if self.quantizer_kind == "rabitq":
            candidate_ids, estimate = self._estimate_rabitq(vec, cluster_ids)
        else:
            candidate_ids, estimate = self._estimate_external(vec, cluster_ids)
        ids, dists, n_exact = self.reranker.rerank(
            vec, candidate_ids, estimate, self._flat, k
        )
        return SearchResult(
            ids=self._to_external_ids(ids),
            distances=dists,
            n_candidates=int(candidate_ids.shape[0]),
            n_exact=n_exact,
        )

    def _to_external_ids(self, slots: np.ndarray) -> np.ndarray:
        """Map internal slot positions to the stable external ids."""
        assert self._ids is not None
        return self._ids[np.asarray(slots, dtype=np.intp)]

    def _estimate_rabitq_batch(
        self, query_mat: np.ndarray, probes: np.ndarray
    ) -> list[tuple[np.ndarray, DistanceEstimate]]:
        """Grouped-by-cluster batch estimation for all queries at once.

        Each probed cluster's packed code matrix is scanned once for the
        whole group of queries probing it (one multi-query popcount kernel
        call per cluster), then per-query candidate lists are reassembled in
        the query's probed-cluster order — exactly the concatenation order of
        the sequential path.  Per-cluster query groups are built in ascending
        query order so each cluster quantizer's randomized-rounding stream is
        consumed in the same order as sequential calls, keeping batch output
        bit-identical.
        """
        assert self._cluster_quantizers is not None and self._ivf is not None
        assert self._live is not None
        live = self._live
        n_queries = query_mat.shape[0]
        probe_lists = probes.tolist()
        groups: dict[int, list[int]] = {}
        for qi in range(n_queries):
            for cid in probe_lists[qi]:
                groups.setdefault(cid, []).append(qi)

        # cluster id -> (row position per query id, bucket ids, stacked
        # (4, n_group_queries, n_cluster_codes) estimate fields: distances,
        # lower bounds, upper bounds, inner products).  Stacking lets the
        # per-query assembly below slice one tensor and concatenate once
        # instead of handling the four fields separately.
        buckets = self._ivf.buckets
        quantizers = self._cluster_quantizers
        cluster_blocks: dict[int, tuple[dict[int, int], np.ndarray, np.ndarray]] = {}
        for cid, query_ids in groups.items():
            bucket = buckets[cid]
            quantizer = quantizers[cid]
            if quantizer is None or len(bucket) == 0:
                continue
            prepared = quantizer.prepare_queries(query_mat[np.asarray(query_ids)])
            estimate = quantizer.estimate_distances_batch(prepared)
            stacked = np.stack(
                (
                    estimate.distances,
                    estimate.lower_bounds,
                    estimate.upper_bounds,
                    estimate.inner_products,
                )
            )
            # Tombstone filtering mirrors the sequential path exactly: the
            # full-cluster estimate above has already consumed the cluster's
            # query-rounding stream, and dead columns are masked out of the
            # same computed tensor the sequential path masks row-wise.
            mask = live[bucket.vector_ids]
            if mask.all():
                vector_ids = bucket.vector_ids
            elif not mask.any():
                continue
            else:
                vector_ids = bucket.vector_ids[mask]
                stacked = stacked[:, :, mask]
            rows = {qi: row for row, qi in enumerate(query_ids)}
            cluster_blocks[cid] = (rows, vector_ids, stacked)

        per_query: list[tuple[np.ndarray, DistanceEstimate]] = []
        for qi in range(n_queries):
            id_blocks: list[np.ndarray] = []
            est_blocks: list[np.ndarray] = []
            for cid in probe_lists[qi]:
                block = cluster_blocks.get(cid)
                if block is None:
                    continue
                rows, vector_ids, stacked = block
                id_blocks.append(vector_ids)
                est_blocks.append(stacked[:, rows[qi], :])
            if not id_blocks:
                empty = np.empty(0, dtype=np.float64)
                per_query.append(
                    (
                        np.empty(0, dtype=np.int64),
                        DistanceEstimate(
                            distances=empty,
                            lower_bounds=empty.copy(),
                            upper_bounds=empty.copy(),
                            inner_products=empty.copy(),
                        ),
                    )
                )
                continue
            fields = (
                est_blocks[0]
                if len(est_blocks) == 1
                else np.concatenate(est_blocks, axis=1)
            )
            per_query.append(
                (
                    np.concatenate(id_blocks),
                    DistanceEstimate(
                        distances=fields[0],
                        lower_bounds=fields[1],
                        upper_bounds=fields[2],
                        inner_products=fields[3],
                    ),
                )
            )
        return per_query

    def search_batch(
        self, queries: np.ndarray, k: int, *, nprobe: int = 8
    ) -> BatchSearchResult:
        """Answer a batch of ANN queries with the vectorized engine.

        Probing, query preparation and distance estimation are batched
        (queries are grouped by probed cluster so each cluster's packed code
        matrix is scanned once per query group); re-ranking runs per query.
        The results — ids *and* distances — are element-wise identical to
        ``[self.search(q, k, nprobe=nprobe) for q in queries]``; prefer this
        entry point whenever more than a handful of queries are available at
        once.

        Parameters
        ----------
        queries:
            Raw query matrix, shape ``(n_queries, dim)``.
        k:
            Number of neighbours to return per query.
        nprobe:
            Number of IVF clusters to scan per query.
        """
        if self._ivf is None or self._flat is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        query_mat = as_float_matrix(queries, "queries")
        n_queries = query_mat.shape[0]
        if n_queries == 0:
            return BatchSearchResult(
                ids=(),
                distances=(),
                n_candidates=np.empty(0, dtype=np.int64),
                n_exact=np.empty(0, dtype=np.int64),
            )

        probes = self._ivf.probe_batch(query_mat, nprobe)

        # Bound the live (query, candidate) estimate tensors by processing
        # very large batches in query chunks, sized from the *actual* probed
        # bucket sizes (an average would under-estimate on skewed data, where
        # queries gravitate to the largest clusters).  Chunks run in
        # ascending query order, so per-cluster RNG consumption — and
        # therefore every result — is unchanged: this is purely a peak-memory
        # cap.
        pair_counts = self._ivf.bucket_sizes()[probes].sum(axis=1)
        ids_out: list[np.ndarray] = []
        dists_out: list[np.ndarray] = []
        n_candidates: list[int] = []
        n_exact: list[int] = []
        lo = 0
        while lo < n_queries:
            hi = lo + 1
            budget = _SEARCH_BATCH_MAX_PAIRS - int(pair_counts[lo])
            while hi < n_queries and int(pair_counts[hi]) <= budget:
                budget -= int(pair_counts[hi])
                hi += 1
            chunk_queries = query_mat[lo:hi]
            chunk_probes = probes[lo:hi]
            if self.quantizer_kind == "rabitq":
                per_query = self._estimate_rabitq_batch(chunk_queries, chunk_probes)
            else:
                per_query = [
                    self._estimate_external(chunk_queries[qi], chunk_probes[qi])
                    for qi in range(hi - lo)
                ]
            candidate_lists = [candidate_ids for candidate_ids, _ in per_query]
            reranked = self.reranker.rerank_batch(
                chunk_queries,
                candidate_lists,
                [estimate for _, estimate in per_query],
                self._flat,
                k,
            )
            ids_out.extend(self._to_external_ids(ids) for ids, _, _ in reranked)
            dists_out.extend(dists for _, dists, _ in reranked)
            n_candidates.extend(ids.shape[0] for ids in candidate_lists)
            n_exact.extend(exact for _, _, exact in reranked)
            lo = hi
        return BatchSearchResult(
            ids=tuple(ids_out),
            distances=tuple(dists_out),
            n_candidates=np.asarray(n_candidates, dtype=np.int64),
            n_exact=np.asarray(n_exact, dtype=np.int64),
        )


__all__ = ["IVFQuantizedSearcher", "SearchResult", "BatchSearchResult"]
