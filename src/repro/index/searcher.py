"""IVF + quantizer ANN search pipelines (Section 4 of the paper).

:class:`IVFQuantizedSearcher` couples the IVF coarse index with a quantizer
and a re-ranking strategy:

* **IVF-RaBitQ** — per-cluster RaBitQ quantizers sharing a single rotation;
  the cluster centroid is the normalization centroid, and candidates are
  re-ranked with the error-bound rule (no tuning).
* **IVF-PQ / IVF-OPQ** — a PQ or OPQ quantizer trained globally; candidates
  are re-ranked with a fixed candidate count (the paper sweeps 500 / 1000 /
  2500).

The searcher exposes one method, :meth:`IVFQuantizedSearcher.search`, whose
result carries the retrieved ids, their distances, and cost counters
(number of estimated distances and of exact re-ranking computations) so the
benchmark harness can report both accuracy and work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import RaBitQConfig
from repro.core.estimator import DistanceEstimate
from repro.core.quantizer import RaBitQ
from repro.core.rotation import make_rotation
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.index.flat import FlatIndex
from repro.index.ivf import IVFIndex
from repro.index.rerank import ErrorBoundReranker, Reranker
from repro.substrates.linalg import as_float_matrix
from repro.substrates.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class SearchResult:
    """Result of one ANN query.

    Attributes
    ----------
    ids:
        Retrieved vector ids (ascending reported distance).
    distances:
        Squared distances of the retrieved vectors (exact when re-ranking
        computed them, estimated otherwise).
    n_candidates:
        Number of candidates whose distance was *estimated* (i.e. the total
        size of the probed clusters).
    n_exact:
        Number of candidates whose *exact* distance was computed during
        re-ranking.
    """

    ids: np.ndarray
    distances: np.ndarray
    n_candidates: int
    n_exact: int


class IVFQuantizedSearcher:
    """ANN search pipeline combining IVF, a quantizer and a re-ranker.

    Parameters
    ----------
    quantizer_kind:
        ``"rabitq"`` for per-cluster RaBitQ (the paper's method) or
        ``"external"`` when an already-constructed baseline quantizer (PQ,
        OPQ, ...) trained on the full dataset is supplied via
        ``external_quantizer``.
    n_clusters:
        Number of IVF clusters (``None`` = size-scaled default).
    rabitq_config:
        Configuration of the per-cluster RaBitQ quantizers.
    external_quantizer:
        A fitted-on-demand baseline quantizer exposing ``fit`` /
        ``estimate_distances`` (only used when ``quantizer_kind="external"``).
    reranker:
        Re-ranking strategy; defaults to the error-bound rule for RaBitQ and
        must be supplied explicitly for baselines.
    rng:
        Seed or generator for the IVF clustering.
    """

    def __init__(
        self,
        quantizer_kind: str = "rabitq",
        *,
        n_clusters: int | None = None,
        rabitq_config: Optional[RaBitQConfig] = None,
        external_quantizer=None,
        reranker: Optional[Reranker] = None,
        rng: RngLike = None,
    ) -> None:
        if quantizer_kind not in ("rabitq", "external"):
            raise InvalidParameterError(
                "quantizer_kind must be 'rabitq' or 'external'"
            )
        if quantizer_kind == "external" and external_quantizer is None:
            raise InvalidParameterError(
                "external_quantizer must be provided when quantizer_kind='external'"
            )
        self.quantizer_kind = quantizer_kind
        self.n_clusters = n_clusters
        self.rabitq_config = (
            rabitq_config if rabitq_config is not None else RaBitQConfig(seed=0)
        )
        self.external_quantizer = external_quantizer
        self.reranker: Reranker = (
            reranker if reranker is not None else ErrorBoundReranker()
        )
        self._rng = ensure_rng(rng)
        self._ivf: IVFIndex | None = None
        self._flat: FlatIndex | None = None
        self._cluster_quantizers: list[RaBitQ] | None = None
        self._data: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Index phase
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._ivf is not None

    @property
    def ivf(self) -> IVFIndex:
        """The underlying IVF coarse index."""
        if self._ivf is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        return self._ivf

    @property
    def flat(self) -> FlatIndex:
        """The exact index used for re-ranking."""
        if self._flat is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        return self._flat

    def fit(self, data: np.ndarray) -> "IVFQuantizedSearcher":
        """Build the IVF index and train the quantizer(s) on ``data``."""
        mat = as_float_matrix(data, "data")
        self._data = mat
        self._flat = FlatIndex(mat)
        self._ivf = IVFIndex(self.n_clusters, rng=self._rng).fit(mat)

        if self.quantizer_kind == "rabitq":
            # All clusters share one rotation so that the query only needs to
            # be rotated once per cluster-centroid frame.
            code_length = self.rabitq_config.resolve_code_length(mat.shape[1])
            shared_rotation = make_rotation(
                self.rabitq_config.rotation, code_length, self._rng
            )
            quantizers: list[RaBitQ] = []
            for bucket in self._ivf.buckets:
                if len(bucket) == 0:
                    quantizers.append(None)  # type: ignore[arg-type]
                    continue
                quantizer = RaBitQ(self.rabitq_config)
                quantizer.fit(
                    mat[bucket.vector_ids],
                    centroid=self._ivf.centroids[bucket.centroid_id],
                    rotation=shared_rotation,
                )
                quantizers.append(quantizer)
            self._cluster_quantizers = quantizers
        else:
            self.external_quantizer.fit(mat)
        return self

    # ------------------------------------------------------------------ #
    # Query phase
    # ------------------------------------------------------------------ #

    def _estimate_rabitq(
        self, query: np.ndarray, cluster_ids: np.ndarray
    ) -> tuple[np.ndarray, DistanceEstimate]:
        """Estimate distances for all vectors in the probed clusters."""
        assert self._cluster_quantizers is not None and self._ivf is not None
        id_blocks: list[np.ndarray] = []
        dist_blocks: list[np.ndarray] = []
        lower_blocks: list[np.ndarray] = []
        upper_blocks: list[np.ndarray] = []
        ip_blocks: list[np.ndarray] = []
        for cid in cluster_ids:
            bucket = self._ivf.buckets[int(cid)]
            quantizer = self._cluster_quantizers[int(cid)]
            if quantizer is None or len(bucket) == 0:
                continue
            estimate = quantizer.estimate_distances(query)
            id_blocks.append(bucket.vector_ids)
            dist_blocks.append(estimate.distances)
            lower_blocks.append(estimate.lower_bounds)
            upper_blocks.append(estimate.upper_bounds)
            ip_blocks.append(estimate.inner_products)
        if not id_blocks:
            empty = np.empty(0, dtype=np.float64)
            return np.empty(0, dtype=np.int64), DistanceEstimate(
                distances=empty,
                lower_bounds=empty.copy(),
                upper_bounds=empty.copy(),
                inner_products=empty.copy(),
            )
        candidate_ids = np.concatenate(id_blocks)
        estimate = DistanceEstimate(
            distances=np.concatenate(dist_blocks),
            lower_bounds=np.concatenate(lower_blocks),
            upper_bounds=np.concatenate(upper_blocks),
            inner_products=np.concatenate(ip_blocks),
        )
        return candidate_ids, estimate

    def _estimate_external(
        self, query: np.ndarray, cluster_ids: np.ndarray
    ) -> tuple[np.ndarray, DistanceEstimate]:
        """Estimate distances with the external (PQ/OPQ-style) quantizer."""
        assert self._ivf is not None
        blocks = [
            self._ivf.buckets[int(cid)].vector_ids
            for cid in cluster_ids
            if len(self._ivf.buckets[int(cid)]) > 0
        ]
        if not blocks:
            empty = np.empty(0, dtype=np.float64)
            return np.empty(0, dtype=np.int64), DistanceEstimate(
                distances=empty,
                lower_bounds=empty.copy(),
                upper_bounds=empty.copy(),
                inner_products=empty.copy(),
            )
        candidate_ids = np.concatenate(blocks)
        codes = self.external_quantizer.codes[candidate_ids]
        distances = self.external_quantizer.estimate_distances(query, codes=codes)
        # Baselines have no error bound: lower/upper bounds degenerate to the
        # estimate itself, so only fixed-candidate re-ranking is meaningful.
        estimate = DistanceEstimate(
            distances=distances,
            lower_bounds=distances.copy(),
            upper_bounds=distances.copy(),
            inner_products=np.zeros_like(distances),
        )
        return candidate_ids, estimate

    def search(self, query: np.ndarray, k: int, *, nprobe: int = 8) -> SearchResult:
        """Answer one ANN query.

        Parameters
        ----------
        query:
            Raw query vector.
        k:
            Number of neighbours to return.
        nprobe:
            Number of IVF clusters to scan.
        """
        if self._ivf is None or self._flat is None:
            raise NotFittedError("IVFQuantizedSearcher must be fitted before use")
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        cluster_ids = self._ivf.probe(vec, nprobe)
        if self.quantizer_kind == "rabitq":
            candidate_ids, estimate = self._estimate_rabitq(vec, cluster_ids)
        else:
            candidate_ids, estimate = self._estimate_external(vec, cluster_ids)
        ids, dists, n_exact = self.reranker.rerank(
            vec, candidate_ids, estimate, self._flat, k
        )
        return SearchResult(
            ids=ids,
            distances=dists,
            n_candidates=int(candidate_ids.shape[0]),
            n_exact=n_exact,
        )

    def search_batch(
        self, queries: np.ndarray, k: int, *, nprobe: int = 8
    ) -> list[SearchResult]:
        """Answer a batch of queries one by one (single-threaded, as in the paper)."""
        query_mat = as_float_matrix(queries, "queries")
        return [self.search(query, k, nprobe=nprobe) for query in query_mat]


__all__ = ["IVFQuantizedSearcher", "SearchResult"]
