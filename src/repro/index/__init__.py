"""Index structures for in-memory ANN search.

* :mod:`repro.index.flat` — exact brute-force index (ground truth / re-ranking).
* :mod:`repro.index.ivf` — inverted-file (IVF) coarse index (Sec. 4 substrate).
* :mod:`repro.index.hnsw` — hierarchical navigable small-world graph baseline.
* :mod:`repro.index.rerank` — re-ranking strategies (error-bound based and
  fixed-candidate-count).
* :mod:`repro.index.arena` — contiguous cluster-grouped code arena backing
  the searcher's fused estimation hot path.
* :mod:`repro.index.searcher` — IVF + quantizer ANN pipelines
  (IVF-RaBitQ and IVF-PQ/OPQ) used by the Fig. 4 experiments.
* :mod:`repro.index.sharded` — shard-parallel serving layer fanning
  queries across independent searchers and merging with stable top-k.
"""

from repro.index.arena import CodeArena
from repro.index.flat import FlatIndex
from repro.index.hnsw import HNSWIndex
from repro.index.ivf import IVFIndex
from repro.index.rerank import (
    ErrorBoundReranker,
    NoReranker,
    TopCandidateReranker,
)
from repro.index.searcher import (
    BatchSearchResult,
    IVFQuantizedSearcher,
    SearchResult,
)
from repro.index.sharded import ShardedSearcher

__all__ = [
    "CodeArena",
    "FlatIndex",
    "IVFIndex",
    "HNSWIndex",
    "ErrorBoundReranker",
    "TopCandidateReranker",
    "NoReranker",
    "IVFQuantizedSearcher",
    "SearchResult",
    "BatchSearchResult",
    "ShardedSearcher",
]
