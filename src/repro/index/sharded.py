"""Sharded, thread-parallel serving layer over independent IVF-RaBitQ shards.

:class:`ShardedSearcher` partitions a dataset across ``n_shards``
independent :class:`repro.index.searcher.IVFQuantizedSearcher` instances
and serves queries by fanning out to every shard and merging the per-shard
top-k candidates with the library's stable top-k rule.  It is the step from
"one fast searcher on one thread" to a serving topology: shards are fully
independent (their own KMeans codebook, rotation, code arena, rounding
streams), so they can be scanned in parallel threads — the NumPy GEMM/GEMV
estimation kernels release the GIL — and, later, moved to separate
processes or machines without changing the query semantics.

**Global external ids.**  Vectors keep one *global* id across the whole
lifecycle, no matter which shard stores them.  After :meth:`fit` the global
ids are ``0 .. n-1`` (row positions, exactly like the single searcher);
:meth:`insert` assigns fresh consecutive ids or accepts explicit ones.
Internally each shard manages its own local external ids; the sharded layer
keeps a per-shard local→global array and a global→(shard, local) map, and
every result reports global ids.

**Shard assignment.**  ``assignment="round_robin"`` (default) deals vectors
to shards in arrival order — perfectly balanced for any insert pattern;
``assignment="hash"`` places each vector by a splitmix64 hash of its global
id — deterministic placement that is stable under re-insertion of the same
ids.  Both keep assignment metadata O(1); the placement of existing vectors
never changes (no resharding on insert/delete).

**Merge semantics.**  Every shard answers with its own top-k (each shard's
result is already in ascending reported-distance order); the sharded result
is the stable top-k over the concatenation of the per-shard candidate lists
in shard order — ties by distance resolve toward the lower shard index,
then toward the shard's own ordering.  Given the same per-shard states, the
merged result is therefore a pure deterministic function of the per-shard
results: running the shards serially (``n_threads=1``), in a thread pool
(``n_threads>1``), or standalone (plain :class:`IVFQuantizedSearcher`
instances queried one by one and merged by hand) yields bit-identical ids,
distances and cost counters.  ``tests/test_sharded.py`` pins this
equivalence across fit → insert → delete → compact → save → load.

**nprobe is per shard.**  ``search(query, k, nprobe=p)`` probes ``p``
clusters *in every shard*.  Because each shard builds its own codebook over
``1/n_shards`` of the data, the combined codebook is finer than a single
searcher's: holding the *global* probe budget fixed (``p = nprobe_total /
n_shards``) scans roughly the same number of cells but each cell holds
fewer vectors, which shrinks the candidate set per query — the
work-efficiency win measured in ``benchmarks/run_bench.py``'s
``shards×threads`` sweep.  Probing more (e.g. the full ``nprobe_total`` per
shard) trades throughput back for recall.

**Concurrency.**  One :meth:`search_batch` call dispatches one task per
shard; a shard's rounding streams are consumed by exactly one task, in
batch order, so parallel execution is bit-identical to serial regardless of
scheduling.  Concurrent *top-level* calls on the same ``ShardedSearcher``
are memory-safe (shard scratch is thread-local) but interleave stream
consumption nondeterministically unless query preparation is deterministic
(``randomized_rounding=False``, ``query_cache_size=0``) — the same contract
as the underlying searcher, see ``repro/index/searcher.py``.  Mutations
(:meth:`insert` / :meth:`delete` / :meth:`compact`) must not run
concurrently with queries.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.config import RaBitQConfig
from repro.core.metric import Metric, resolve_metric
from repro.exceptions import (
    DimensionMismatchError,
    InvalidParameterError,
    NotFittedError,
)
from repro.index.ivf import PROBE_STRATEGIES
from repro.index.rerank import Reranker
from repro.index.searcher import (
    _ESTIMATION_MODES,
    BatchSearchResult,
    IVFQuantizedSearcher,
    SearchResult,
)
from repro.substrates.linalg import as_float_matrix, stable_topk_indices
from repro.substrates.rng import RngLike, ensure_rng, spawn_rngs

_ASSIGNMENTS = ("round_robin", "hash")


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over an int64/uint64 array (vectorized)."""
    z = values.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


class ShardedSearcher:
    """Shard-parallel ANN serving engine over independent RaBitQ searchers.

    Parameters
    ----------
    n_shards:
        Number of independent shards (each a full
        :class:`IVFQuantizedSearcher`).
    n_threads:
        Size of the fan-out thread pool.  ``None`` (default) uses one
        thread per shard; ``0`` or ``1`` runs the shards serially in the
        calling thread (bit-identical results either way).  May be
        reassigned between calls.
    assignment:
        ``"round_robin"`` (arrival-order dealing, default) or ``"hash"``
        (splitmix64 of the global id).
    n_clusters:
        IVF cluster count *per shard* (``None`` = per-shard size-scaled
        default, which yields a finer combined codebook than one searcher
        over the union — see the module docstring).
    rabitq_config:
        Shared RaBitQ configuration; each shard derives its own rotation
        and rounding streams from its own spawned generator.
    reranker:
        Re-ranking strategy shared by all shards (the built-in strategies
        are stateless; a custom reranker must be safe to call from several
        threads).
    rng:
        Seed or generator; per-shard KMeans/rotation generators are spawned
        from it, so a given seed reproduces the exact shard states.
    compact_threshold / query_cache_size:
        Forwarded to every shard (see :class:`IVFQuantizedSearcher`).
    metric:
        The served metric (``"l2"``, ``"ip"`` or ``"cosine"``), forwarded
        to every shard; the cross-shard merge is metric-aware (stable
        top-k on ascending distances or descending similarity scores, ties
        toward the lower shard).  See :mod:`repro.core.metric`.
    estimation_mode:
        The ``<x_b, q̄_u>`` estimation kernel (``"gemm"`` / ``"lut"`` /
        ``"lut8"``), forwarded to every shard; settable on a fitted
        instance (outside of concurrent queries), which switches every
        shard at once.  ``"lut"`` answers are bit-identical to ``"gemm"``
        shard by shard, hence also after the deterministic merge — see
        :class:`IVFQuantizedSearcher`.
    bits:
        Code width ``B`` in bits per dimension, forwarded to every shard
        (an explicit value overrides ``rabitq_config``; ``None`` keeps
        the config's width).  Multi-bit widths require
        ``estimation_mode="gemm"`` — see :class:`IVFQuantizedSearcher`.
    probe_strategy:
        Centroid-probing strategy (``"exact"`` / ``"graph"``), forwarded
        to every shard and settable on a fitted instance, which switches
        every shard at once — see :class:`IVFQuantizedSearcher`.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        n_threads: int | None = None,
        assignment: str = "round_robin",
        n_clusters: int | None = None,
        rabitq_config: Optional[RaBitQConfig] = None,
        reranker: Optional[Reranker] = None,
        rng: RngLike = None,
        compact_threshold: float | None = 0.25,
        query_cache_size: int = 0,
        metric: str | Metric = "l2",
        estimation_mode: str = "gemm",
        bits: int | None = None,
        probe_strategy: str = "exact",
    ) -> None:
        if n_shards <= 0:
            raise InvalidParameterError("n_shards must be positive")
        if assignment not in _ASSIGNMENTS:
            raise InvalidParameterError(
                f"assignment must be one of {_ASSIGNMENTS}"
            )
        if n_threads is not None and n_threads < 0:
            raise InvalidParameterError("n_threads must be >= 0 when given")
        if estimation_mode not in _ESTIMATION_MODES:
            raise InvalidParameterError(
                f"estimation_mode must be one of {_ESTIMATION_MODES}"
            )
        if probe_strategy not in PROBE_STRATEGIES:
            raise InvalidParameterError(
                f"probe_strategy must be one of {PROBE_STRATEGIES}"
            )
        self.n_shards = int(n_shards)
        self.assignment = assignment
        self.n_clusters = n_clusters
        self.rabitq_config = rabitq_config
        if bits is not None:
            base = (
                rabitq_config
                if rabitq_config is not None
                else RaBitQConfig(seed=0)
            )
            self.rabitq_config = base.with_overrides(bits=int(bits))
        if (
            self.rabitq_config is not None
            and self.rabitq_config.bits > 1
            and estimation_mode != "gemm"
        ):
            raise InvalidParameterError(
                f"estimation_mode {estimation_mode!r} supports only 1-bit "
                f"codes (fast-scan LUT tables are binary); use 'gemm' for "
                f"bits={self.rabitq_config.bits}"
            )
        self.reranker = reranker
        self.compact_threshold = compact_threshold
        self.query_cache_size = int(query_cache_size)
        self._metric = resolve_metric(metric)
        self._estimation_mode = estimation_mode
        self._probe_strategy = probe_strategy
        self._rng = ensure_rng(rng)
        self._n_threads = self.n_shards if n_threads is None else int(n_threads)
        self._pool: ThreadPoolExecutor | None = None
        self._shards: list[IVFQuantizedSearcher] | None = None
        # Lifecycle state: per-shard local→global id arrays (shard-local
        # external ids are always assigned consecutively, so position ==
        # local id), the global→(shard, local) routing map, and counters.
        self._l2g: list[np.ndarray] = []
        self._g2s: dict[int, tuple[int, int]] = {}
        self._next_gid = 0
        self._rr_next = 0
        # Crash-recovery state, populated by the persistence layer: the
        # UUID of the directory-archive generation this searcher was loaded
        # from (or last saved as) and the attached mutation journal, if
        # any.  Mutations are journaled at the global level only — the
        # per-shard searchers keep ``_journal is None`` and replay derives
        # the shard routing deterministically from the restored counters.
        self._archive_uuid: str | None = None
        self._journal = None

    # ------------------------------------------------------------------ #
    # Executor lifecycle
    # ------------------------------------------------------------------ #

    @property
    def n_threads(self) -> int:
        """Current fan-out thread count (0/1 = serial execution)."""
        return self._n_threads

    @n_threads.setter
    def n_threads(self, value: int) -> None:
        if value < 0:
            raise InvalidParameterError("n_threads must be >= 0")
        if value != self._n_threads:
            self._shutdown_pool()
        self._n_threads = int(value)

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def close(self) -> None:
        """Shut down the fan-out thread pool (idempotent).

        The searcher remains usable; the pool is recreated on the next
        parallel call.
        """
        self._shutdown_pool()

    def __enter__(self) -> "ShardedSearcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self._shutdown_pool()
        except Exception:
            pass

    def _run_per_shard(self, tasks: Sequence[Callable[[], object]]) -> list:
        """Run one callable per shard, in shard order; parallel when enabled.

        Results are collected in shard order either way, so the merge input
        — and with it the merged output — is independent of scheduling.
        """
        if self._n_threads <= 1 or len(tasks) <= 1:
            return [task() for task in tasks]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._n_threads, thread_name_prefix="repro-shard"
            )
        futures = [self._pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    # Index phase
    # ------------------------------------------------------------------ #

    @property
    def metric(self) -> str:
        """Name of the served metric (``"l2"``, ``"ip"`` or ``"cosine"``)."""
        return self._metric.name

    @property
    def estimation_mode(self) -> str:
        """The ``<x_b, q̄_u>`` kernel (``"gemm"`` / ``"lut"`` / ``"lut8"``).

        Assigning a new mode switches every shard at once.  Like the
        per-shard setter it must not race in-flight queries.
        """
        return self._estimation_mode

    @property
    def bits(self) -> int:
        """Code width ``B`` in bits per dimension (1 for binary RaBitQ)."""
        if self.rabitq_config is not None:
            return int(self.rabitq_config.bits)
        return 1

    @estimation_mode.setter
    def estimation_mode(self, mode: str) -> None:
        if mode not in _ESTIMATION_MODES:
            raise InvalidParameterError(
                f"estimation_mode must be one of {_ESTIMATION_MODES}"
            )
        if mode != "gemm" and self.bits > 1:
            raise InvalidParameterError(
                f"estimation_mode {mode!r} supports only 1-bit codes "
                f"(fast-scan LUT tables are binary); use 'gemm' for "
                f"bits={self.bits}"
            )
        if self._shards is not None:
            for shard in self._shards:
                shard.estimation_mode = mode
        self._estimation_mode = mode

    @property
    def probe_strategy(self) -> str:
        """Centroid-probing strategy (``"exact"`` / ``"graph"``).

        Assigning a new strategy switches every shard at once; each shard's
        centroid graph is built lazily on its first graph probe.  Like the
        other serving knobs it must not race in-flight queries.
        """
        return self._probe_strategy

    @probe_strategy.setter
    def probe_strategy(self, strategy: str) -> None:
        if strategy not in PROBE_STRATEGIES:
            raise InvalidParameterError(
                f"probe_strategy must be one of {PROBE_STRATEGIES}"
            )
        if self._shards is not None:
            for shard in self._shards:
                shard.probe_strategy = strategy
        self._probe_strategy = strategy

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._shards is not None

    @property
    def shards(self) -> list[IVFQuantizedSearcher]:
        """The per-shard searchers (shard order)."""
        if self._shards is None:
            raise NotFittedError("ShardedSearcher must be fitted before use")
        return self._shards

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self.shards[0].flat.dim

    def shard_of(self, global_id: int) -> int:
        """The shard currently storing ``global_id`` (lookup, not hashing)."""
        entry = self._g2s.get(int(global_id))
        if entry is None:
            raise InvalidParameterError(
                f"unknown or deleted global id: {global_id}"
            )
        return entry[0]

    def _assign_shards(self, global_ids: np.ndarray) -> np.ndarray:
        """Shard index for each new vector (consumes round-robin positions)."""
        n_new = global_ids.shape[0]
        if self.assignment == "hash":
            return (
                _splitmix64(global_ids) % np.uint64(self.n_shards)
            ).astype(np.int64)
        shard_ids = (
            (np.arange(self._rr_next, self._rr_next + n_new, dtype=np.int64))
            % self.n_shards
        )
        self._rr_next += n_new
        return shard_ids

    def fit(self, data: np.ndarray) -> "ShardedSearcher":
        """Partition ``data`` across the shards and fit each one.

        Global external ids are assigned positionally (``0 .. n-1``),
        exactly like :meth:`IVFQuantizedSearcher.fit`; they remain stable
        across later mutations.  Every shard must receive at least one
        vector (guaranteed by round-robin whenever ``n >= n_shards``; hash
        assignment may need a larger ``n``).
        """
        mat = as_float_matrix(data, "data")
        n = mat.shape[0]
        if n < self.n_shards:
            raise InvalidParameterError(
                f"cannot fit {self.n_shards} shards with only {n} vectors"
            )
        global_ids = np.arange(n, dtype=np.int64)
        self._rr_next = 0
        shard_ids = self._assign_shards(global_ids)
        rows_per_shard = [
            np.flatnonzero(shard_ids == s) for s in range(self.n_shards)
        ]
        for s, rows in enumerate(rows_per_shard):
            if rows.shape[0] == 0:
                raise InvalidParameterError(
                    f"shard {s} received no vectors under "
                    f"assignment={self.assignment!r}; use more data or "
                    f"fewer shards"
                )
        shard_rngs = spawn_rngs(self._rng, self.n_shards)
        config = (
            self.rabitq_config
            if self.rabitq_config is not None
            else RaBitQConfig(seed=0)
        )
        shards = [
            IVFQuantizedSearcher(
                "rabitq",
                n_clusters=self.n_clusters,
                rabitq_config=config,
                reranker=self.reranker,
                rng=shard_rngs[s],
                compact_threshold=self.compact_threshold,
                query_cache_size=self.query_cache_size,
                metric=self._metric,
                estimation_mode=self._estimation_mode,
                probe_strategy=self._probe_strategy,
            )
            for s in range(self.n_shards)
        ]
        # Shard fits are independent (each owns its spawned generator), so
        # they fan out on the same pool as queries — on multi-core hosts
        # index construction parallelizes like search does, and the result
        # is scheduling-independent either way.
        self._run_per_shard(
            [
                (lambda shard=shard, rows=rows: shard.fit(mat[rows]))
                for shard, rows in zip(shards, rows_per_shard)
            ]
        )
        self._shards = shards
        self._l2g = [rows.astype(np.int64) for rows in rows_per_shard]
        self._g2s = {}
        for s, rows in enumerate(rows_per_shard):
            for local, gid in enumerate(rows.tolist()):
                self._g2s[gid] = (s, local)
        self._next_gid = n
        return self

    # ------------------------------------------------------------------ #
    # Mutation phase (index lifecycle)
    # ------------------------------------------------------------------ #

    @property
    def n_total(self) -> int:
        """Stored slots across all shards, including tombstoned ones."""
        return sum(shard.n_total for shard in self.shards)

    @property
    def n_deleted(self) -> int:
        """Tombstoned (deleted but not yet compacted) vectors, all shards."""
        return sum(shard.n_deleted for shard in self.shards)

    @property
    def n_live(self) -> int:
        """Searchable vectors across all shards."""
        return sum(shard.n_live for shard in self.shards)

    @property
    def live_ids(self) -> np.ndarray:
        """Global ids of all searchable vectors, ascending."""
        parts = [
            self._l2g[s][shard.live_ids]
            for s, shard in enumerate(self.shards)
            if shard.n_live
        ]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(parts))

    def _journal_record(self, op: str, **arrays: np.ndarray) -> None:
        """Append a mutation record when a journal is attached (else no-op)."""
        if self._journal is not None:
            self._journal.record(op, **arrays)

    def insert(
        self, vectors: np.ndarray, ids: np.ndarray | None = None
    ) -> np.ndarray:
        """Insert new vectors, route them to shards, return their global ids.

        Validation (dimensions, id uniqueness, collisions) happens *before*
        any shard mutates, so a rejected insert leaves every shard
        untouched.
        """
        shards = self.shards  # raises NotFittedError when unfitted
        mat = as_float_matrix(vectors, "vectors")
        n_new = mat.shape[0]
        if n_new == 0:
            return np.empty(0, dtype=np.int64)
        if mat.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"vectors have dimension {mat.shape[1]}, index expects "
                f"{self.dim}"
            )
        if ids is None:
            new_gids = np.arange(
                self._next_gid, self._next_gid + n_new, dtype=np.int64
            )
        else:
            new_gids = np.asarray(ids, dtype=np.int64).reshape(-1)
            if new_gids.shape[0] != n_new:
                raise InvalidParameterError(
                    "need exactly one global id per inserted vector"
                )
            if np.unique(new_gids).shape[0] != n_new:
                raise InvalidParameterError("inserted ids must be unique")
            collisions = [g for g in new_gids.tolist() if g in self._g2s]
            if collisions:
                raise InvalidParameterError(
                    f"ids already present in the index: {collisions[:5]}"
                )
        shard_ids = self._assign_shards(new_gids)
        for s in range(self.n_shards):
            rows = np.flatnonzero(shard_ids == s)
            if rows.shape[0] == 0:
                continue
            locals_ = shards[s].insert(mat[rows])
            self._l2g[s] = np.concatenate([self._l2g[s], new_gids[rows]])
            for local, gid in zip(locals_.tolist(), new_gids[rows].tolist()):
                self._g2s[gid] = (s, local)
        self._next_gid = max(self._next_gid, int(new_gids.max()) + 1)
        # Journal the *resolved* global ids: replay re-derives the shard
        # routing from the restored assignment counters, but must never
        # re-derive id assignment.
        self._journal_record("insert", vectors=mat, ids=new_gids)
        return new_gids

    def delete(self, ids: np.ndarray | int) -> int:
        """Tombstone the given global ids; return how many were removed.

        All ids are validated against the routing map before any shard
        mutates (unknown or already-deleted ids raise
        :class:`InvalidParameterError` and leave the index unchanged).
        Per-shard auto-compaction fires independently, exactly as on a
        standalone searcher.
        """
        shards = self.shards
        requested = np.unique(np.asarray(ids, dtype=np.int64).reshape(-1))
        per_shard: dict[int, list[int]] = {}
        missing = []
        for gid in requested.tolist():
            entry = self._g2s.get(gid)
            if entry is None:
                missing.append(gid)
            else:
                per_shard.setdefault(entry[0], []).append(entry[1])
        if missing:
            raise InvalidParameterError(
                f"cannot delete unknown or already-deleted ids: {missing[:5]}"
            )
        for s, local_ids in per_shard.items():
            shards[s].delete(np.asarray(local_ids, dtype=np.int64))
        for gid in requested.tolist():
            del self._g2s[gid]
        # Per-shard auto-compactions replay from this record (the shard
        # searchers carry no journal of their own).
        self._journal_record("delete", ids=requested)
        return int(requested.shape[0])

    def compact(self) -> int:
        """Compact every shard; return the total number of slots reclaimed.

        Shard-local external ids (and therefore the global id mapping) are
        stable across compaction, so no routing state changes.
        """
        reclaimed = sum(shard.compact() for shard in self.shards)
        if reclaimed:
            # A no-reclaim compact is not journaled: replaying one would be
            # harmless, but the journal stays a log of state changes.
            self._journal_record("compact")
        return reclaimed

    # ------------------------------------------------------------------ #
    # Query phase
    # ------------------------------------------------------------------ #

    def _merge_one(
        self,
        k: int,
        shard_ids: list[np.ndarray],
        shard_dists: list[np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stable top-k merge of per-shard results (global ids, values).

        Candidates are concatenated in shard order, so value ties break
        toward the lower shard index and then toward the shard's own
        (already best-first, stable) ordering — a fixed,
        scheduling-independent rule.  Selection is metric-aware: ascending
        squared distances for ``metric="l2"`` (the historical bit-identical
        path), descending similarity scores otherwise.
        """
        gids = [
            self._l2g[s][ids] if ids.shape[0] else ids
            for s, ids in enumerate(shard_ids)
        ]
        all_gids = np.concatenate(gids) if len(gids) > 1 else gids[0]
        all_dists = (
            np.concatenate(shard_dists)
            if len(shard_dists) > 1
            else shard_dists[0]
        )
        keep = min(k, all_gids.shape[0])
        if keep == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        order = stable_topk_indices(self._metric.sort_key(all_dists), keep)
        return all_gids[order], all_dists[order]

    def search(
        self, query: np.ndarray, k: int, *, nprobe: int = 8
    ) -> SearchResult:
        """Answer one ANN query across all shards (global ids).

        ``nprobe`` clusters are probed *per shard*; cost counters are the
        sums over shards.  Fewer than ``k`` results are returned only when
        the probed clusters hold fewer than ``k`` live vectors in total.
        """
        shards = self.shards
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        if nprobe < 1:
            raise InvalidParameterError("nprobe must be >= 1")
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self.dim:
            raise InvalidParameterError(
                f"query has {vec.shape[0]} dimensions, searcher expects "
                f"{self.dim}"
            )
        results: list[SearchResult] = self._run_per_shard(
            [
                (lambda shard=shard: shard.search(vec, k, nprobe=nprobe))
                for shard in shards
            ]
        )
        ids, dists = self._merge_one(
            k, [r.ids for r in results], [r.distances for r in results]
        )
        return SearchResult(
            ids=ids,
            distances=dists,
            n_candidates=sum(r.n_candidates for r in results),
            n_exact=sum(r.n_exact for r in results),
        )

    def search_batch(
        self, queries: np.ndarray, k: int, *, nprobe: int = 8
    ) -> BatchSearchResult:
        """Answer a batch of queries: one vectorized batch call per shard.

        Each shard processes the whole batch in one
        :meth:`IVFQuantizedSearcher.search_batch` call (queries in batch
        order, so per-shard stream consumption is scheduling-independent);
        the per-query merge is the same stable top-k as :meth:`search`,
        hence batch ≡ sequential holds for the sharded engine exactly as it
        does per shard.
        """
        shards = self.shards
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        if nprobe < 1:
            raise InvalidParameterError("nprobe must be >= 1")
        query_mat = as_float_matrix(queries, "queries")
        n_queries = query_mat.shape[0]
        if n_queries > 0 and query_mat.shape[1] != self.dim:
            raise InvalidParameterError(
                f"queries have {query_mat.shape[1]} dimensions, searcher "
                f"expects {self.dim}"
            )
        if n_queries == 0:
            return BatchSearchResult(
                ids=(),
                distances=(),
                n_candidates=np.empty(0, dtype=np.int64),
                n_exact=np.empty(0, dtype=np.int64),
            )
        per_shard: list[BatchSearchResult] = self._run_per_shard(
            [
                (
                    lambda shard=shard: shard.search_batch(
                        query_mat, k, nprobe=nprobe
                    )
                )
                for shard in shards
            ]
        )
        ids_out: list[np.ndarray] = []
        dists_out: list[np.ndarray] = []
        for qi in range(n_queries):
            ids, dists = self._merge_one(
                k,
                [res.ids[qi] for res in per_shard],
                [res.distances[qi] for res in per_shard],
            )
            ids_out.append(ids)
            dists_out.append(dists)
        n_candidates = np.sum(
            [res.n_candidates for res in per_shard], axis=0, dtype=np.int64
        )
        n_exact = np.sum(
            [res.n_exact for res in per_shard], axis=0, dtype=np.int64
        )
        return BatchSearchResult(
            ids=tuple(ids_out),
            distances=tuple(dists_out),
            n_candidates=n_candidates,
            n_exact=n_exact,
        )

    # ------------------------------------------------------------------ #
    # Persistence support (see repro.io.persistence)
    # ------------------------------------------------------------------ #

    @classmethod
    def _from_state(
        cls,
        shards: list[IVFQuantizedSearcher],
        l2g: list[np.ndarray],
        *,
        assignment: str,
        next_gid: int,
        rr_next: int,
        n_threads: int | None = None,
    ) -> "ShardedSearcher":
        """Rebuild a fitted sharded searcher from loaded shard state.

        Used by :func:`repro.io.persistence.load_sharded_searcher`; the
        routing map is reconstructed from each shard's live ids.
        """
        if len(shards) != len(l2g) or not shards:
            raise InvalidParameterError(
                "need one local-to-global id array per shard"
            )
        first = shards[0]
        if any(shard.metric != first.metric for shard in shards):
            raise InvalidParameterError(
                "all shards must serve the same metric"
            )
        if any(
            shard.estimation_mode != first.estimation_mode for shard in shards
        ):
            raise InvalidParameterError(
                "all shards must use the same estimation_mode"
            )
        if any(
            shard.probe_strategy != first.probe_strategy for shard in shards
        ):
            raise InvalidParameterError(
                "all shards must use the same probe_strategy"
            )
        if any(shard.bits != first.bits for shard in shards):
            raise InvalidParameterError(
                "all shards must use the same code width (bits)"
            )
        sharded = cls(
            len(shards),
            n_threads=n_threads,
            assignment=assignment,
            n_clusters=first.n_clusters,
            rabitq_config=first.rabitq_config,
            reranker=first.reranker,
            compact_threshold=first.compact_threshold,
            query_cache_size=first.query_cache_size,
            metric=first.metric,
            estimation_mode=first.estimation_mode,
            probe_strategy=first.probe_strategy,
        )
        g2s: dict[int, tuple[int, int]] = {}
        for s, (shard, mapping) in enumerate(zip(shards, l2g)):
            arr = np.asarray(mapping, dtype=np.int64).reshape(-1)
            # Local external ids are never reused, so the map needs one
            # entry per id ever assigned (which exceeds the live slot count
            # after a compaction).
            if arr.shape[0] < shard._next_id:
                raise InvalidParameterError(
                    f"shard {s} id map has {arr.shape[0]} entries for "
                    f"{shard._next_id} assigned local ids"
                )
            l2g[s] = arr
            for local in shard.live_ids.tolist():
                g2s[int(arr[local])] = (s, local)
        sharded._shards = list(shards)
        sharded._l2g = list(l2g)
        sharded._g2s = g2s
        sharded._next_gid = int(next_gid)
        sharded._rr_next = int(rr_next)
        return sharded


__all__ = ["ShardedSearcher"]
