"""Re-ranking strategies (Section 4 of the paper), metric-generic.

After estimated distances (or similarity scores) have been computed for the
candidates of the probed IVF clusters, a re-ranking step decides which
candidates get their *exact* metric value computed.  The paper contrasts
two strategies:

* :class:`TopCandidateReranker` — the conventional PQ-style rule: re-rank a
  fixed number of candidates with the best estimates.  The count is a
  dataset-dependent hyper-parameter that is hard to tune.
* :class:`ErrorBoundReranker` — RaBitQ's rule: maintain the exact value of
  the best candidate found so far and compute the exact value of a new
  candidate only if the *optimistic* end of its confidence interval (lower
  bound for distances, upper bound for similarities) does not already lose
  to that threshold.  No tuning is required because the bound holds with
  (very) high probability by Theorem 3.2.
* :class:`NoReranker` — returns the candidates ranked purely by estimated
  value (the "w/o re-ranking" ablation of Appendix F.3).

Every strategy accepts a ``metric`` (see :mod:`repro.core.metric`):
``"l2"`` (the default) minimizes squared distances through the exact
historical code path — bit-identical to the metric-oblivious
implementation — while ``"ip"`` / ``"cosine"`` maximize similarity scores.
Direction-generic selection reuses the minimization machinery on negated
keys (IEEE negation is exact and double negation restores the original bit
pattern), so the suffix-minimum early exit becomes a suffix-*extremum*:
the scan stops as soon as no unvisited candidate's optimistic bound can
beat the current ``k``-th best exact value, whichever direction "beat"
points.

Candidate selection avoids full ``O(n log n)`` stable sorts on the hot path:
:func:`repro.substrates.linalg.stable_topk_indices` narrows the selection
with an ``O(n)`` argpartition and only sorts the survivors, with ties broken
by ascending index exactly as the stable full sort would.  Every strategy
also exposes :meth:`Reranker.rerank_batch`, the per-query loop used by the
batch search engine (the estimates differ per query, so re-ranking is
inherently per-query work; all strategies keep batch output identical to
looping :meth:`Reranker.rerank`).
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from repro.core.estimator import DistanceEstimate
from repro.core.metric import Metric, resolve_metric
from repro.exceptions import InvalidParameterError
from repro.index.flat import FlatIndex
from repro.substrates.linalg import stable_topk_indices


class Reranker(abc.ABC):
    """Interface of a re-ranking strategy."""

    @abc.abstractmethod
    def rerank(
        self,
        query: np.ndarray,
        candidate_ids: np.ndarray,
        estimate: DistanceEstimate,
        flat_index: FlatIndex,
        k: int,
        *,
        metric: str | Metric = "l2",
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Return ``(ids, values, n_exact_computations)`` of the final top-k.

        ``values`` are exact metric values (squared distances ascending for
        ``metric="l2"``, similarity scores descending for ``"ip"`` /
        ``"cosine"``) for strategies that compute them and estimated values
        for :class:`NoReranker`.  ``n_exact_computations`` counts raw-vector
        metric evaluations and is the cost measure the paper's QPS
        differences ultimately track.
        """

    def rerank_batch(
        self,
        queries: np.ndarray,
        candidate_ids: list[np.ndarray] | tuple[np.ndarray, ...],
        estimates: list[DistanceEstimate] | tuple[DistanceEstimate, ...],
        flat_index: FlatIndex,
        k: int,
        *,
        metric: str | Metric = "l2",
    ) -> list[tuple[np.ndarray, np.ndarray, int]]:
        """Re-rank one candidate list + estimate per query row.

        The default implementation loops :meth:`rerank`, which guarantees
        batch results identical to the sequential path.
        """
        queries_mat = np.asarray(queries, dtype=np.float64)
        if queries_mat.ndim != 2 or queries_mat.shape[0] != len(candidate_ids):
            raise InvalidParameterError(
                "queries must be a matrix with one row per candidate list"
            )
        if len(candidate_ids) != len(estimates):
            raise InvalidParameterError(
                "need exactly one DistanceEstimate per candidate list"
            )
        return [
            self.rerank(
                queries_mat[i],
                candidate_ids[i],
                estimates[i],
                flat_index,
                k,
                metric=metric,
            )
            for i in range(queries_mat.shape[0])
        ]


class NoReranker(Reranker):
    """Rank candidates purely by their estimated values (no exact step)."""

    def rerank(
        self,
        query: np.ndarray,
        candidate_ids: np.ndarray,
        estimate: DistanceEstimate,
        flat_index: FlatIndex,
        k: int,
        *,
        metric: str | Metric = "l2",
    ) -> tuple[np.ndarray, np.ndarray, int]:
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        resolved = resolve_metric(metric)
        ids = np.asarray(candidate_ids, dtype=np.int64)
        est = estimate.distances
        k = min(k, ids.shape[0])
        if k == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64), 0
        order = stable_topk_indices(resolved.sort_key(est), k)
        return ids[order], est[order], 0


class TopCandidateReranker(Reranker):
    """Re-rank a fixed number of best-estimated candidates exactly.

    Parameters
    ----------
    n_candidates:
        How many candidates (per query) get exact metric computations;
        the paper sweeps 500 / 1000 / 2500 for IVF-OPQ.
    """

    def __init__(self, n_candidates: int) -> None:
        if n_candidates <= 0:
            raise InvalidParameterError("n_candidates must be positive")
        self.n_candidates = int(n_candidates)

    def rerank(
        self,
        query: np.ndarray,
        candidate_ids: np.ndarray,
        estimate: DistanceEstimate,
        flat_index: FlatIndex,
        k: int,
        *,
        metric: str | Metric = "l2",
    ) -> tuple[np.ndarray, np.ndarray, int]:
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        resolved = resolve_metric(metric)
        ids = np.asarray(candidate_ids, dtype=np.int64)
        if ids.shape[0] == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64), 0
        keep = min(self.n_candidates, ids.shape[0])
        order = stable_topk_indices(resolved.sort_key(estimate.distances), keep)
        shortlist = ids[order]
        if not resolved.higher_is_better:
            final_ids, final_dists = flat_index.rerank(query, shortlist, k)
            return final_ids, final_dists, int(shortlist.shape[0])
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        scores = resolved.exact_scores(
            flat_index.data[np.asarray(shortlist, dtype=np.intp)], vec
        )
        sel = stable_topk_indices(-scores, min(k, shortlist.shape[0]))
        return shortlist[sel], scores[sel], int(shortlist.shape[0])


class ErrorBoundReranker(Reranker):
    """RaBitQ's tuning-free re-ranking rule based on the error bound.

    Candidates are visited in order of best estimated value.  The ``k``
    best exact values found so far are maintained; a candidate's exact
    value is computed only when the optimistic end of its confidence
    interval could still beat the current ``k``-th best.  Because
    candidates are visited in estimated order and the bound holds with
    high probability, the true best neighbours are sent to re-ranking with
    high probability while hopeless candidates are skipped cheaply.

    The estimated-value ordering is materialized lazily: only a doubling
    prefix of the stable order is computed (via argpartition-based partial
    selection), and the scan stops early once no unvisited candidate's
    optimistic bound can beat the current ``k``-th best exact value — the
    threshold only ever tightens, so none of the remaining candidates could
    ever be selected.  For moderate candidate sets a pre-computed
    suffix-extremum of the bounds along the stable order (suffix *minimum*
    of lower bounds for distances, suffix *maximum* of upper bounds for
    similarities — evaluated on the negated keys, so one code path serves
    both directions) makes that stop check O(1) per chunk.  All of this is
    output-preserving: ids, values and the exact-computation count match
    the eager full-sort implementation, and the ``metric="l2"`` path is
    bit-identical to the historical distance-only code.
    """

    def rerank(
        self,
        query: np.ndarray,
        candidate_ids: np.ndarray,
        estimate: DistanceEstimate,
        flat_index: FlatIndex,
        k: int,
        *,
        metric: str | Metric = "l2",
    ) -> tuple[np.ndarray, np.ndarray, int]:
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        resolved = resolve_metric(metric)
        ids = np.asarray(candidate_ids, dtype=np.int64)
        if ids.shape[0] == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64), 0

        # Exact values are computed inline (gather + the metric's exact
        # kernel — for L2 the same difference + einsum as
        # FlatIndex.distances, without the per-call validation); ``data``
        # is a view of the flat index's raw vectors.
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        data = flat_index.data

        if not resolved.higher_is_better:
            # The historical minimization path: keys are the values
            # themselves, the optimistic bound is the lower bound.
            est = estimate.distances
            opt = estimate.lower_bounds

            def exact_key(selected_ids: np.ndarray) -> np.ndarray:
                diff = data[selected_ids] - vec[None, :]
                return np.einsum("ij,ij->i", diff, diff)

            final_ids, final_vals, n_exact = self._rerank_by_min_key(
                ids, est, opt, exact_key, k
            )
            return final_ids, final_vals, n_exact

        # Similarity metrics run the same minimization machinery on negated
        # keys: the optimistic bound is the upper bound, "k-th best" is the
        # k-th largest exact score, and the suffix minimum of the negated
        # upper bounds is the suffix maximum of the real ones.  Negation is
        # exact, so un-negating the pooled values restores the scores bit
        # for bit.
        est = -estimate.scores
        opt = -estimate.upper_bounds

        def exact_key(selected_ids: np.ndarray) -> np.ndarray:
            return -resolved.exact_scores(data[selected_ids], vec)

        final_ids, final_vals, n_exact = self._rerank_by_min_key(
            ids, est, opt, exact_key, k
        )
        return final_ids, -final_vals, n_exact

    @staticmethod
    def _rerank_by_min_key(
        ids: np.ndarray,
        est: np.ndarray,
        opt: np.ndarray,
        exact_key: Callable[[np.ndarray], np.ndarray],
        k: int,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Error-bound re-ranking over minimization keys.

        ``est`` orders the visit (ascending), ``opt`` is the smallest key a
        candidate could truly have, and ``exact_key(selected_ids)`` returns
        the exact keys of the selected rows.  This is the historical L2
        implementation verbatim; direction-generic callers feed negated
        arrays.
        """
        n_candidates = ids.shape[0]

        # Batch the exact computations: exact keys are computed for the
        # visited prefix lazily, but NumPy-vectorized per chunk to keep the
        # Python overhead bounded.  The evolving k-th-best threshold is
        # maintained with a small pooled array per chunk instead of a
        # per-element Python heap; the pool holds every computed
        # (id, value) pair in visit order, so the final stable selection
        # reproduces the heap implementation's output — including tie
        # handling and the exact-computation count — exactly.
        pool_ids: list[np.ndarray] = []
        pool_vals: list[np.ndarray] = []
        kbest = np.empty(0, dtype=np.float64)  # k smallest exact keys so far
        n_pooled = 0
        n_exact = 0
        chunk = max(64, k)

        # For moderate candidate sets, materialize the full stable order once
        # and pre-compute the suffix minimum of the optimistic bounds along
        # it: "can any unvisited candidate still beat the threshold?" then
        # costs O(1) per chunk instead of an O(n) scan per doubling round.
        # The stop condition is unchanged — the scan ends exactly when every
        # remaining chunk would select nothing (the threshold only ever
        # decreases), so ids, values and the exact-computation count all
        # match the lazily-doubling implementation.
        suffix_min: np.ndarray | None = None
        if n_candidates <= 8192:
            m = n_candidates
            order = stable_topk_indices(est, n_candidates)
            suffix_min = np.minimum.accumulate(opt[order][::-1])[::-1]
        else:
            m = 0  # length of the materialized stable-order prefix
            order = np.empty(0, dtype=np.intp)
        idx = 0
        while idx < n_candidates:
            if suffix_min is not None:
                if n_pooled >= k and suffix_min[idx] > kbest.max():
                    break
            elif idx >= m:
                if n_pooled >= k:
                    threshold = kbest.max()
                    unvisited = np.ones(n_candidates, dtype=bool)
                    unvisited[order[:idx]] = False
                    if not (opt[unvisited] <= threshold).any():
                        break
                m = min(n_candidates, max(chunk, 2 * m))
                order = stable_topk_indices(est, m)
            stop = min(idx + chunk, m)
            block = order[idx:stop]
            threshold = kbest.max() if n_pooled >= k else np.inf
            # Candidates whose optimistic bound already loses to the k-th
            # best exact key can be dropped without an exact computation.
            selected = block[opt[block] <= threshold]
            if selected.shape[0] > 0:
                selected_ids = ids[selected]
                exact = exact_key(selected_ids)
                n_exact += int(selected.shape[0])
                pool_ids.append(selected_ids)
                pool_vals.append(exact)
                n_pooled += int(selected.shape[0])
                # Update the k smallest multiset (only its max — the
                # threshold — is ever read, so boundary ties are immaterial).
                merged = np.concatenate([kbest, exact])
                kbest = (
                    np.partition(merged, k - 1)[:k]
                    if merged.shape[0] > k
                    else merged
                )
            idx = stop

        if n_pooled == 0:
            # Fall back to the estimated ranking if every candidate was pruned
            # (can only happen with a pathological, e.g. NaN, bound).
            fallback = min(k, n_candidates)
            full_order = stable_topk_indices(est, fallback)
            return ids[full_order], est[full_order], n_exact
        all_ids = pool_ids[0] if len(pool_ids) == 1 else np.concatenate(pool_ids)
        all_vals = (
            pool_vals[0] if len(pool_vals) == 1 else np.concatenate(pool_vals)
        )
        # Stable top-k over the pool in visit order == the heap version's
        # "sorted by value, ties by first computation" output.
        final = stable_topk_indices(all_vals, min(k, n_pooled))
        return all_ids[final], all_vals[final], n_exact


__all__ = [
    "Reranker",
    "NoReranker",
    "TopCandidateReranker",
    "ErrorBoundReranker",
]
