"""Re-ranking strategies (Section 4 of the paper).

After estimated distances have been computed for the candidates of the
probed IVF clusters, a re-ranking step decides which candidates get their
*exact* distance computed.  The paper contrasts two strategies:

* :class:`TopCandidateReranker` — the conventional PQ-style rule: re-rank a
  fixed number of candidates with the smallest estimated distances.  The
  count is a dataset-dependent hyper-parameter that is hard to tune.
* :class:`ErrorBoundReranker` — RaBitQ's rule: maintain the exact distance of
  the best candidate found so far and compute the exact distance of a new
  candidate only if the *lower bound* of its estimated distance does not
  already exceed that threshold.  No tuning is required because the bound
  holds with (very) high probability by Theorem 3.2.
* :class:`NoReranker` — returns the candidates ranked purely by estimated
  distance (the "w/o re-ranking" ablation of Appendix F.3).

Candidate selection avoids full ``O(n log n)`` stable sorts on the hot path:
:func:`repro.substrates.linalg.stable_topk_indices` narrows the selection
with an ``O(n)`` argpartition and only sorts the survivors, with ties broken
by ascending index exactly as the stable full sort would.  Every strategy
also exposes :meth:`Reranker.rerank_batch`, the per-query loop used by the
batch search engine (the estimates differ per query, so re-ranking is
inherently per-query work; all strategies keep batch output identical to
looping :meth:`Reranker.rerank`).
"""

from __future__ import annotations

import abc
import heapq

import numpy as np

from repro.core.estimator import DistanceEstimate
from repro.exceptions import InvalidParameterError
from repro.index.flat import FlatIndex
from repro.substrates.linalg import stable_topk_indices


class Reranker(abc.ABC):
    """Interface of a re-ranking strategy."""

    @abc.abstractmethod
    def rerank(
        self,
        query: np.ndarray,
        candidate_ids: np.ndarray,
        estimate: DistanceEstimate,
        flat_index: FlatIndex,
        k: int,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Return ``(ids, distances, n_exact_computations)`` of the final top-k.

        ``distances`` are exact squared distances for strategies that compute
        them and estimated distances for :class:`NoReranker`.
        ``n_exact_computations`` counts raw-vector distance evaluations and is
        the cost measure the paper's QPS differences ultimately track.
        """

    def rerank_batch(
        self,
        queries: np.ndarray,
        candidate_ids: list[np.ndarray] | tuple[np.ndarray, ...],
        estimates: list[DistanceEstimate] | tuple[DistanceEstimate, ...],
        flat_index: FlatIndex,
        k: int,
    ) -> list[tuple[np.ndarray, np.ndarray, int]]:
        """Re-rank one candidate list + estimate per query row.

        The default implementation loops :meth:`rerank`, which guarantees
        batch results identical to the sequential path.
        """
        queries_mat = np.asarray(queries, dtype=np.float64)
        if queries_mat.ndim != 2 or queries_mat.shape[0] != len(candidate_ids):
            raise InvalidParameterError(
                "queries must be a matrix with one row per candidate list"
            )
        if len(candidate_ids) != len(estimates):
            raise InvalidParameterError(
                "need exactly one DistanceEstimate per candidate list"
            )
        return [
            self.rerank(queries_mat[i], candidate_ids[i], estimates[i], flat_index, k)
            for i in range(queries_mat.shape[0])
        ]


class NoReranker(Reranker):
    """Rank candidates purely by their estimated distances (no exact step)."""

    def rerank(
        self,
        query: np.ndarray,
        candidate_ids: np.ndarray,
        estimate: DistanceEstimate,
        flat_index: FlatIndex,
        k: int,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        ids = np.asarray(candidate_ids, dtype=np.int64)
        est = estimate.distances
        k = min(k, ids.shape[0])
        if k == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64), 0
        order = stable_topk_indices(est, k)
        return ids[order], est[order], 0


class TopCandidateReranker(Reranker):
    """Re-rank a fixed number of best-estimated candidates exactly.

    Parameters
    ----------
    n_candidates:
        How many candidates (per query) get exact distance computations;
        the paper sweeps 500 / 1000 / 2500 for IVF-OPQ.
    """

    def __init__(self, n_candidates: int) -> None:
        if n_candidates <= 0:
            raise InvalidParameterError("n_candidates must be positive")
        self.n_candidates = int(n_candidates)

    def rerank(
        self,
        query: np.ndarray,
        candidate_ids: np.ndarray,
        estimate: DistanceEstimate,
        flat_index: FlatIndex,
        k: int,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        ids = np.asarray(candidate_ids, dtype=np.int64)
        if ids.shape[0] == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64), 0
        keep = min(self.n_candidates, ids.shape[0])
        order = stable_topk_indices(estimate.distances, keep)
        shortlist = ids[order]
        final_ids, final_dists = flat_index.rerank(query, shortlist, k)
        return final_ids, final_dists, int(shortlist.shape[0])


class ErrorBoundReranker(Reranker):
    """RaBitQ's tuning-free re-ranking rule based on the error bound.

    Candidates are visited in order of increasing estimated distance.  A
    max-heap of the ``k`` best exact distances found so far is maintained;
    a candidate's exact distance is computed only when the lower bound of its
    estimated distance is below the current ``k``-th best exact distance.
    Because candidates are visited in estimated order and the bound holds with
    high probability, the true nearest neighbours are sent to re-ranking with
    high probability while far-away candidates are skipped cheaply.

    The estimated-distance ordering is materialized lazily: only a doubling
    prefix of the stable order is computed (via argpartition-based partial
    selection), and the scan stops early once no unvisited candidate's lower
    bound can beat the current ``k``-th best exact distance — the threshold
    only ever decreases, so none of the remaining candidates could ever be
    selected.  Both changes are output-preserving: ids, distances and the
    exact-computation count match the eager full-sort implementation.
    """

    def rerank(
        self,
        query: np.ndarray,
        candidate_ids: np.ndarray,
        estimate: DistanceEstimate,
        flat_index: FlatIndex,
        k: int,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        ids = np.asarray(candidate_ids, dtype=np.int64)
        n_candidates = ids.shape[0]
        if n_candidates == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64), 0

        est = estimate.distances
        lower = estimate.lower_bounds

        # Batch the exact-distance computations: exact distances are computed
        # for the visited prefix lazily, but NumPy-vectorized per chunk to
        # keep the Python overhead bounded.
        heap: list[float] = []  # max-heap via negated distances
        results: dict[int, float] = {}
        n_exact = 0
        chunk = max(64, k)
        idx = 0
        m = 0  # length of the materialized stable-order prefix
        order = np.empty(0, dtype=np.intp)
        while idx < n_candidates:
            if idx >= m:
                if len(heap) >= k:
                    threshold = -heap[0]
                    unvisited = np.ones(n_candidates, dtype=bool)
                    unvisited[order[:idx]] = False
                    if not (lower[unvisited] <= threshold).any():
                        break
                m = min(n_candidates, max(chunk, 2 * m))
                order = stable_topk_indices(est, m)
            stop = min(idx + chunk, m)
            block = order[idx:stop]
            threshold = -heap[0] if len(heap) >= k else np.inf
            # Candidates whose lower bound already exceeds the k-th best exact
            # distance can be dropped without computing their exact distance.
            selected = block[lower[block] <= threshold]
            if selected.shape[0] > 0:
                selected_ids = ids[selected]
                exact = flat_index.distances(query, selected_ids)
                n_exact += int(selected.shape[0])
                for vec_id, dist in zip(selected_ids.tolist(), exact.tolist()):
                    if len(heap) < k:
                        heapq.heappush(heap, -dist)
                        results[vec_id] = dist
                    elif dist < -heap[0]:
                        heapq.heapreplace(heap, -dist)
                        results[vec_id] = dist
            idx = stop

        if not results:
            # Fall back to the estimated ranking if every candidate was pruned
            # (can only happen with a pathological, e.g. NaN, bound).
            fallback = min(k, n_candidates)
            full_order = stable_topk_indices(est, fallback)
            return ids[full_order], est[full_order], n_exact
        sorted_items = sorted(results.items(), key=lambda item: item[1])[:k]
        final_ids = np.asarray([item[0] for item in sorted_items], dtype=np.int64)
        final_dists = np.asarray([item[1] for item in sorted_items], dtype=np.float64)
        return final_ids, final_dists, n_exact


__all__ = [
    "Reranker",
    "NoReranker",
    "TopCandidateReranker",
    "ErrorBoundReranker",
]
