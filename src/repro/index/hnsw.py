"""Hierarchical Navigable Small World (HNSW) graph index.

HNSW (Malkov & Yashunin, 2020) is the graph-based reference baseline of the
paper's ANN experiments (Fig. 4).  This is a pure-NumPy/Python implementation
of the standard algorithm: a layered proximity graph built by greedy
insertion with the heuristic neighbour-selection rule, searched with the
usual best-first beam search controlled by ``ef_search``.

The implementation is intentionally faithful rather than micro-optimized; it
serves as a relative reference curve in the QPS/recall trade-off — and, since
the graph-accelerated probing work, as the navigation structure over IVF
centroids (see :mod:`repro.index.ivf`).  For that role the index supports:

* **metric-aware search keys** — ``search(..., metric="l2"|"ip"|"cosine")``
  ranks nodes by exactly the minimization key that
  :meth:`repro.core.metric.Metric.probe_key` produces (squared L2 via the
  norm-expansion kernel, negated inner product, negated cosine), so graph
  probing and exact-scan probing order candidates on identical key values.
  The graph *structure* is always built under L2 (a navigable small world is
  a connectivity property, not a metric-specific one); only the search-time
  keys follow the served metric.
* **a batch entry point** — :meth:`search_batch` runs the per-query search
  for every row of a query matrix and returns rectangular id/key matrices.
* **serialization** — :meth:`to_state` flattens the layered adjacency into a
  canonical set of integer arrays (sorted node order, neighbour lists
  preserved verbatim) and :meth:`from_state` rebuilds an identical graph;
  round-tripping is bit-stable, which is what lets the persistence layer
  store centroid graphs inside format-v7 archives.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Optional

import numpy as np

from repro.core.metric import Metric, resolve_metric
from repro.exceptions import (
    DimensionMismatchError,
    EmptyDatasetError,
    InvalidParameterError,
    NotFittedError,
)
from repro.substrates.linalg import as_float_matrix, squared_distances_to_point
from repro.substrates.rng import RngLike, ensure_rng

#: Stats-dict key counting how many node keys a search evaluated (the
#: graph-probing analogue of "centroids scanned"; exact probing always
#: evaluates ``n_clusters`` keys per query).
STAT_KEY_EVALS = "n_key_evals"


class HNSWIndex:
    """Hierarchical navigable small-world graph for ANN search.

    Parameters
    ----------
    m:
        Maximum out-degree per node on the upper layers (layer 0 allows
        ``2 * m`` as in the reference implementation).  Must be at least 2:
        the level multiplier is ``1 / ln(m)``, which is undefined at
        ``m=1`` (and a 1-regular "graph" cannot navigate anyway).
    ef_construction:
        Beam width used while inserting elements.
    rng:
        Seed or generator for the level assignment.
    """

    def __init__(
        self,
        m: int = 16,
        ef_construction: int = 100,
        *,
        rng: RngLike = None,
    ) -> None:
        if m < 2:
            raise InvalidParameterError(
                f"m must be at least 2 (got {m}): the HNSW level multiplier "
                "is 1/ln(m), which is undefined at m=1"
            )
        if ef_construction <= 0:
            raise InvalidParameterError("ef_construction must be positive")
        self.m = int(m)
        self.m0 = 2 * int(m)
        self.ef_construction = int(ef_construction)
        self._rng = ensure_rng(rng)
        self._level_multiplier = 1.0 / math.log(float(self.m))
        self._data: np.ndarray | None = None
        # One adjacency dict per layer: node id -> list of neighbour ids.
        self._layers: list[dict[int, list[int]]] = []
        self._entry_point: int | None = None
        self._max_level: int = -1
        # Lazily-computed ``||x||^2`` cache backing the metric-aware keys.
        self._sq_norms: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._data is not None

    @property
    def data(self) -> np.ndarray:
        """The stored raw vectors."""
        if self._data is None:
            raise NotFittedError("HNSWIndex must be fitted before use")
        return self._data

    def __len__(self) -> int:
        return 0 if self._data is None else int(self._data.shape[0])

    def _draw_level(self) -> int:
        return int(-math.log(max(self._rng.random(), 1e-12)) * self._level_multiplier)

    def _distance(self, query: np.ndarray, node: int) -> float:
        diff = self._data[node] - query
        return float(diff @ diff)

    def _distances(self, query: np.ndarray, nodes: list[int]) -> np.ndarray:
        return squared_distances_to_point(self._data[nodes], query)

    def _node_sq_norms(self) -> np.ndarray:
        if self._sq_norms is None:
            self._sq_norms = np.einsum("ij,ij->i", self._data, self._data)
        return self._sq_norms

    def _make_keys(
        self,
        vec: np.ndarray,
        metric: Optional[Metric],
        stats: dict | None,
    ) -> Callable[[list[int]], np.ndarray]:
        """Per-node minimization keys for one query.

        ``metric=None`` is the legacy squared-L2 path; a resolved metric
        routes through :meth:`Metric.probe_key` so the key values are
        numerically the same computation exact-scan probing performs on the
        full node matrix.  When ``stats`` is given, every evaluated node is
        counted under :data:`STAT_KEY_EVALS`.
        """
        if metric is None:
            def keys(nodes: list[int]) -> np.ndarray:
                return squared_distances_to_point(self._data[nodes], vec)
        else:
            sq_norms = self._node_sq_norms()

            def keys(nodes: list[int]) -> np.ndarray:
                return metric.probe_key(self._data[nodes], sq_norms[nodes], vec)

        if stats is None:
            return keys

        def counted(nodes: list[int]) -> np.ndarray:
            stats[STAT_KEY_EVALS] = stats.get(STAT_KEY_EVALS, 0) + len(nodes)
            return keys(nodes)

        return counted

    def _search_layer(
        self,
        query: np.ndarray,
        entry_points: list[int],
        ef: int,
        layer: int,
        keys: Callable[[list[int]], np.ndarray] | None = None,
    ) -> list[tuple[float, int]]:
        """Best-first search on one layer; returns (key, id) pairs ascending."""
        if keys is None:
            keys = self._make_keys(query, None, None)
        adjacency = self._layers[layer]
        visited = set(entry_points)
        candidates: list[tuple[float, int]] = []
        results: list[tuple[float, int]] = []  # max-heap via negated key
        for point, dist in zip(entry_points, keys(entry_points)):
            dist = float(dist)
            heapq.heappush(candidates, (dist, point))
            heapq.heappush(results, (-dist, point))
        while candidates:
            dist, node = heapq.heappop(candidates)
            if results and dist > -results[0][0] and len(results) >= ef:
                break
            neighbours = [n for n in adjacency.get(node, []) if n not in visited]
            if not neighbours:
                continue
            visited.update(neighbours)
            dists = keys(neighbours)
            for neighbour, neighbour_dist in zip(neighbours, dists):
                neighbour_dist = float(neighbour_dist)
                if len(results) < ef or neighbour_dist < -results[0][0]:
                    heapq.heappush(candidates, (neighbour_dist, neighbour))
                    heapq.heappush(results, (-neighbour_dist, neighbour))
                    if len(results) > ef:
                        heapq.heappop(results)
        return sorted([(-d, node) for d, node in results])

    def _select_neighbours(
        self, query: np.ndarray, candidates: list[tuple[float, int]], m: int
    ) -> list[int]:
        """Heuristic neighbour selection (Algorithm 4 of the HNSW paper)."""
        selected: list[int] = []
        for dist, node in sorted(candidates):
            if len(selected) >= m:
                break
            keep = True
            for chosen in selected:
                if self._distance(self._data[node], chosen) < dist:
                    keep = False
                    break
            if keep:
                selected.append(node)
        if not selected:
            selected = [node for _, node in sorted(candidates)[:m]]
        return selected

    def fit(self, data: np.ndarray) -> "HNSWIndex":
        """Build the graph by inserting every vector."""
        mat = as_float_matrix(data, "data")
        if mat.shape[0] == 0:
            raise EmptyDatasetError("cannot build an HNSW index over an empty dataset")
        self._data = mat
        self._layers = []
        self._entry_point = None
        self._max_level = -1
        self._sq_norms = None
        for node in range(mat.shape[0]):
            self._insert(node)
        self._repair_reachability()
        return self

    def _repair_reachability(self) -> None:
        """Make every node reachable from the entry point on layer 0.

        Neighbour-list pruning during insertion can leave a node with no
        in-edges on any search path from the entry point, which would make
        it invisible to :meth:`search` at *any* beam width.  This pass runs
        a BFS over layer 0's out-edges and, for each node the BFS cannot
        reach (ascending id order, so the repair is deterministic), links
        it bidirectionally to its nearest already-reachable node, then
        resumes the BFS through the newly attached component.  The added
        edges may push a node past its degree cap — harmless for search,
        which never assumes a bound.
        """
        adjacency = self._layers[0]
        reachable = {self._entry_point}
        frontier = [self._entry_point]
        while frontier:
            node = frontier.pop()
            for neighbour in adjacency.get(node, []):
                if neighbour not in reachable:
                    reachable.add(neighbour)
                    frontier.append(neighbour)
        for node in sorted(adjacency):
            if node in reachable:
                continue
            anchors = np.fromiter(sorted(reachable), dtype=np.int64)
            dists = self._distances(self._data[node], anchors)
            anchor = int(anchors[int(np.argmin(dists))])
            adjacency[anchor].append(node)
            if anchor not in adjacency[node]:
                adjacency[node].append(anchor)
            reachable.add(node)
            frontier = [node]
            while frontier:
                current = frontier.pop()
                for neighbour in adjacency.get(current, []):
                    if neighbour not in reachable:
                        reachable.add(neighbour)
                        frontier.append(neighbour)

    def _insert(self, node: int) -> None:
        level = self._draw_level()
        while len(self._layers) <= level:
            self._layers.append({})
        for layer in range(level + 1):
            self._layers[layer].setdefault(node, [])

        if self._entry_point is None:
            self._entry_point = node
            self._max_level = level
            return

        query = self._data[node]
        entry = self._entry_point
        # Greedy descent through the layers above the node's level.
        for layer in range(self._max_level, level, -1):
            improved = True
            while improved:
                improved = False
                for neighbour in self._layers[layer].get(entry, []):
                    if self._distance(query, neighbour) < self._distance(query, entry):
                        entry = neighbour
                        improved = True

        entry_points = [entry]
        for layer in range(min(level, self._max_level), -1, -1):
            max_degree = self.m0 if layer == 0 else self.m
            found = self._search_layer(
                query, entry_points, self.ef_construction, layer
            )
            neighbours = self._select_neighbours(query, found, max_degree)
            self._layers[layer][node] = list(neighbours)
            for neighbour in neighbours:
                links = self._layers[layer].setdefault(neighbour, [])
                links.append(node)
                if len(links) > max_degree:
                    # Shrink the neighbour's list with the same heuristic.
                    candidate_pairs = [
                        (self._distance(self._data[neighbour], other), other)
                        for other in links
                    ]
                    self._layers[layer][neighbour] = self._select_neighbours(
                        self._data[neighbour], candidate_pairs, max_degree
                    )
            entry_points = [node_id for _, node_id in found] or [entry]

        if level > self._max_level:
            self._max_level = level
            self._entry_point = node

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #

    def search(
        self,
        query: np.ndarray,
        k: int,
        *,
        ef_search: int | None = None,
        metric: str | Metric | None = None,
        stats: dict | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(ids, keys)`` of the ``k`` approximate best nodes.

        With the default ``metric=None`` the keys are squared L2 distances
        (the historical contract).  Passing a metric name ranks by the
        corresponding :meth:`Metric.probe_key` minimization key instead:
        squared L2 via the norm-expansion kernel, negated inner product for
        MIPS, negated cosine for cosine similarity.  ``stats``, when given a
        dict, is updated in place with :data:`STAT_KEY_EVALS` — the number
        of node keys this search evaluated.
        """
        if self._data is None or self._entry_point is None:
            raise NotFittedError("HNSWIndex must be fitted before use")
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self._data.shape[1]:
            raise DimensionMismatchError(
                f"query has dimension {vec.shape[0]}, index expects "
                f"{self._data.shape[1]}"
            )
        resolved = None if metric is None else resolve_metric(metric)
        keys = self._make_keys(vec, resolved, stats)
        ef = max(k, ef_search if ef_search is not None else max(2 * k, 50))

        entry = self._entry_point
        entry_key = float(keys([entry])[0])
        for layer in range(self._max_level, 0, -1):
            improved = True
            while improved:
                improved = False
                neighbours = self._layers[layer].get(entry, [])
                if not neighbours:
                    continue
                neighbour_keys = keys(neighbours)
                best = int(np.argmin(neighbour_keys))
                if float(neighbour_keys[best]) < entry_key:
                    entry = neighbours[best]
                    entry_key = float(neighbour_keys[best])
                    improved = True

        # Seed the beam with the global entry point as well as the greedy
        # descent's endpoint: reachability is guaranteed from the entry
        # point (see ``_repair_reachability``), so a full-width beam
        # (``ef >= len(self)``) provably covers every node.
        seeds = [entry]
        if self._entry_point != entry:
            seeds.append(self._entry_point)
        found = self._search_layer(vec, seeds, ef, 0, keys=keys)
        top = found[:k]
        ids = np.asarray([node for _, node in top], dtype=np.int64)
        vals = np.asarray([key for key, _ in top], dtype=np.float64)
        return ids, vals

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        *,
        ef_search: int | None = None,
        metric: str | Metric | None = None,
        stats: dict | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-row :meth:`search` over a query matrix.

        Returns ``(ids, keys)`` of shape ``(n_queries, min(k, len(self)))``;
        row ``i`` equals ``search(queries[i], k, ...)``.  Should a row's
        beam reach fewer nodes than the row width (possible only on a
        disconnected graph), the tail is padded with id ``-1`` and key
        ``+inf``.
        """
        if self._data is None or self._entry_point is None:
            raise NotFittedError("HNSWIndex must be fitted before use")
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        mat = as_float_matrix(queries, "queries")
        if mat.shape[0] and mat.shape[1] != self._data.shape[1]:
            raise DimensionMismatchError(
                f"queries have dimension {mat.shape[1]}, index expects "
                f"{self._data.shape[1]}"
            )
        width = min(int(k), len(self))
        ids = np.full((mat.shape[0], width), -1, dtype=np.int64)
        vals = np.full((mat.shape[0], width), np.inf, dtype=np.float64)
        for i in range(mat.shape[0]):
            row_ids, row_vals = self.search(
                mat[i], k, ef_search=ef_search, metric=metric, stats=stats
            )
            found = min(width, row_ids.shape[0])
            ids[i, :found] = row_ids[:found]
            vals[i, :found] = row_vals[:found]
        return ids, vals

    def degree_statistics(self) -> dict[str, float]:
        """Mean/max out-degree of layer 0 (diagnostic helper)."""
        if not self._layers:
            raise NotFittedError("HNSWIndex must be fitted before use")
        degrees = np.asarray([len(v) for v in self._layers[0].values()], dtype=np.int64)
        return {
            "mean_degree": float(degrees.mean()),
            "max_degree": float(degrees.max()),
            "n_layers": float(len(self._layers)),
        }

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_state(self) -> dict:
        """Flatten the graph into a canonical, array-valued state dict.

        Layout: per layer, nodes are listed in ascending id order
        (``nodes`` / ``degrees`` aligned, ``layer_sizes`` giving the node
        count per layer) and every node's neighbour list is stored verbatim
        in ``neighbours`` — list order is search-relevant, so it is
        preserved exactly.  The canonical node order makes serialization a
        pure function of the graph: save → load → save reproduces the same
        bytes.  ``data`` is the raw node matrix; callers that already
        persist it elsewhere (the centroid graph does) may drop it and
        supply ``data=`` to :meth:`from_state`.
        """
        if self._data is None or self._entry_point is None:
            raise NotFittedError("HNSWIndex must be fitted before use")
        layer_sizes: list[int] = []
        nodes: list[int] = []
        degrees: list[int] = []
        neighbours: list[int] = []
        for adjacency in self._layers:
            layer_sizes.append(len(adjacency))
            for node in sorted(adjacency):
                links = adjacency[node]
                nodes.append(node)
                degrees.append(len(links))
                neighbours.extend(links)
        return {
            "m": int(self.m),
            "ef_construction": int(self.ef_construction),
            "entry_point": int(self._entry_point),
            "max_level": int(self._max_level),
            "layer_sizes": np.asarray(layer_sizes, dtype=np.int64),
            "nodes": np.asarray(nodes, dtype=np.int64),
            "degrees": np.asarray(degrees, dtype=np.int64),
            "neighbours": np.asarray(neighbours, dtype=np.int64),
            "data": self._data,
        }

    @classmethod
    def from_state(
        cls, state: dict, *, data: np.ndarray | None = None
    ) -> "HNSWIndex":
        """Rebuild a fitted index from :meth:`to_state` output.

        ``data`` overrides the state's node matrix (used when the vectors
        are persisted elsewhere, e.g. the IVF centroid matrix backing the
        centroid graph).  The rebuilt graph searches bit-identically to the
        serialized one: adjacency, neighbour-list order and the entry point
        are restored exactly.
        """
        mat = as_float_matrix(
            data if data is not None else state["data"], "data"
        )
        if mat.shape[0] == 0:
            raise EmptyDatasetError("cannot restore an HNSW index with no nodes")
        index = cls(
            m=int(state["m"]),
            ef_construction=int(state["ef_construction"]),
            rng=0,
        )
        n_nodes = mat.shape[0]
        layer_sizes = np.asarray(state["layer_sizes"], dtype=np.int64).reshape(-1)
        nodes = np.asarray(state["nodes"], dtype=np.int64).reshape(-1)
        degrees = np.asarray(state["degrees"], dtype=np.int64).reshape(-1)
        neighbours = np.asarray(state["neighbours"], dtype=np.int64).reshape(-1)
        if nodes.shape[0] != degrees.shape[0]:
            raise InvalidParameterError(
                "corrupt HNSW state: nodes and degrees must align"
            )
        if int(layer_sizes.sum()) != nodes.shape[0]:
            raise InvalidParameterError(
                "corrupt HNSW state: layer_sizes must sum to the node count"
            )
        if int(degrees.sum()) != neighbours.shape[0]:
            raise InvalidParameterError(
                "corrupt HNSW state: degrees must sum to the neighbour count"
            )
        if nodes.size and (nodes.min() < 0 or nodes.max() >= n_nodes):
            raise InvalidParameterError(
                "corrupt HNSW state: node ids outside the data matrix"
            )
        if neighbours.size and (
            neighbours.min() < 0 or neighbours.max() >= n_nodes
        ):
            raise InvalidParameterError(
                "corrupt HNSW state: neighbour ids outside the data matrix"
            )
        layers: list[dict[int, list[int]]] = []
        node_pos = 0
        link_pos = 0
        for size in layer_sizes:
            adjacency: dict[int, list[int]] = {}
            for _ in range(int(size)):
                node = int(nodes[node_pos])
                degree = int(degrees[node_pos])
                adjacency[node] = [
                    int(x) for x in neighbours[link_pos : link_pos + degree]
                ]
                node_pos += 1
                link_pos += degree
            layers.append(adjacency)
        entry_point = int(state["entry_point"])
        max_level = int(state["max_level"])
        if not layers or entry_point not in layers[0]:
            raise InvalidParameterError(
                "corrupt HNSW state: entry point missing from layer 0"
            )
        if max_level != len(layers) - 1:
            raise InvalidParameterError(
                "corrupt HNSW state: max_level must match the layer count"
            )
        index._data = mat
        index._layers = layers
        index._entry_point = entry_point
        index._max_level = max_level
        index._sq_norms = None
        return index


__all__ = ["HNSWIndex", "STAT_KEY_EVALS"]
