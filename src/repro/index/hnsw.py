"""Hierarchical Navigable Small World (HNSW) graph index.

HNSW (Malkov & Yashunin, 2020) is the graph-based reference baseline of the
paper's ANN experiments (Fig. 4).  This is a pure-NumPy/Python implementation
of the standard algorithm: a layered proximity graph built by greedy
insertion with the heuristic neighbour-selection rule, searched with the
usual best-first beam search controlled by ``ef_search``.

The implementation is intentionally faithful rather than micro-optimized; it
serves as a relative reference curve in the QPS/recall trade-off, not as a
competitor to C++ HNSW libraries.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.exceptions import (
    DimensionMismatchError,
    EmptyDatasetError,
    InvalidParameterError,
    NotFittedError,
)
from repro.substrates.linalg import as_float_matrix, squared_distances_to_point
from repro.substrates.rng import RngLike, ensure_rng


class HNSWIndex:
    """Hierarchical navigable small-world graph for ANN search.

    Parameters
    ----------
    m:
        Maximum out-degree per node on the upper layers (layer 0 allows
        ``2 * m`` as in the reference implementation).
    ef_construction:
        Beam width used while inserting elements.
    rng:
        Seed or generator for the level assignment.
    """

    def __init__(
        self,
        m: int = 16,
        ef_construction: int = 100,
        *,
        rng: RngLike = None,
    ) -> None:
        if m <= 0:
            raise InvalidParameterError("m must be positive")
        if ef_construction <= 0:
            raise InvalidParameterError("ef_construction must be positive")
        self.m = int(m)
        self.m0 = 2 * int(m)
        self.ef_construction = int(ef_construction)
        self._rng = ensure_rng(rng)
        self._level_multiplier = 1.0 / math.log(float(self.m))
        self._data: np.ndarray | None = None
        # One adjacency dict per layer: node id -> list of neighbour ids.
        self._layers: list[dict[int, list[int]]] = []
        self._entry_point: int | None = None
        self._max_level: int = -1

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._data is not None

    @property
    def data(self) -> np.ndarray:
        """The stored raw vectors."""
        if self._data is None:
            raise NotFittedError("HNSWIndex must be fitted before use")
        return self._data

    def __len__(self) -> int:
        return 0 if self._data is None else int(self._data.shape[0])

    def _draw_level(self) -> int:
        return int(-math.log(max(self._rng.random(), 1e-12)) * self._level_multiplier)

    def _distance(self, query: np.ndarray, node: int) -> float:
        diff = self._data[node] - query
        return float(diff @ diff)

    def _distances(self, query: np.ndarray, nodes: list[int]) -> np.ndarray:
        return squared_distances_to_point(self._data[nodes], query)

    def _search_layer(
        self, query: np.ndarray, entry_points: list[int], ef: int, layer: int
    ) -> list[tuple[float, int]]:
        """Best-first search on one layer; returns (distance, id) pairs."""
        adjacency = self._layers[layer]
        visited = set(entry_points)
        candidates: list[tuple[float, int]] = []
        results: list[tuple[float, int]] = []  # max-heap via negated distance
        for point in entry_points:
            dist = self._distance(query, point)
            heapq.heappush(candidates, (dist, point))
            heapq.heappush(results, (-dist, point))
        while candidates:
            dist, node = heapq.heappop(candidates)
            if results and dist > -results[0][0] and len(results) >= ef:
                break
            neighbours = [n for n in adjacency.get(node, []) if n not in visited]
            if not neighbours:
                continue
            visited.update(neighbours)
            dists = self._distances(query, neighbours)
            for neighbour, neighbour_dist in zip(neighbours, dists):
                neighbour_dist = float(neighbour_dist)
                if len(results) < ef or neighbour_dist < -results[0][0]:
                    heapq.heappush(candidates, (neighbour_dist, neighbour))
                    heapq.heappush(results, (-neighbour_dist, neighbour))
                    if len(results) > ef:
                        heapq.heappop(results)
        return sorted([(-d, node) for d, node in results])

    def _select_neighbours(
        self, query: np.ndarray, candidates: list[tuple[float, int]], m: int
    ) -> list[int]:
        """Heuristic neighbour selection (Algorithm 4 of the HNSW paper)."""
        selected: list[int] = []
        for dist, node in sorted(candidates):
            if len(selected) >= m:
                break
            keep = True
            for chosen in selected:
                if self._distance(self._data[node], chosen) < dist:
                    keep = False
                    break
            if keep:
                selected.append(node)
        if not selected:
            selected = [node for _, node in sorted(candidates)[:m]]
        return selected

    def fit(self, data: np.ndarray) -> "HNSWIndex":
        """Build the graph by inserting every vector."""
        mat = as_float_matrix(data, "data")
        if mat.shape[0] == 0:
            raise EmptyDatasetError("cannot build an HNSW index over an empty dataset")
        self._data = mat
        self._layers = []
        self._entry_point = None
        self._max_level = -1
        for node in range(mat.shape[0]):
            self._insert(node)
        return self

    def _insert(self, node: int) -> None:
        level = self._draw_level()
        while len(self._layers) <= level:
            self._layers.append({})
        for layer in range(level + 1):
            self._layers[layer].setdefault(node, [])

        if self._entry_point is None:
            self._entry_point = node
            self._max_level = level
            return

        query = self._data[node]
        entry = self._entry_point
        # Greedy descent through the layers above the node's level.
        for layer in range(self._max_level, level, -1):
            improved = True
            while improved:
                improved = False
                for neighbour in self._layers[layer].get(entry, []):
                    if self._distance(query, neighbour) < self._distance(query, entry):
                        entry = neighbour
                        improved = True

        entry_points = [entry]
        for layer in range(min(level, self._max_level), -1, -1):
            max_degree = self.m0 if layer == 0 else self.m
            found = self._search_layer(
                query, entry_points, self.ef_construction, layer
            )
            neighbours = self._select_neighbours(query, found, max_degree)
            self._layers[layer][node] = list(neighbours)
            for neighbour in neighbours:
                links = self._layers[layer].setdefault(neighbour, [])
                links.append(node)
                if len(links) > max_degree:
                    # Shrink the neighbour's list with the same heuristic.
                    candidate_pairs = [
                        (self._distance(self._data[neighbour], other), other)
                        for other in links
                    ]
                    self._layers[layer][neighbour] = self._select_neighbours(
                        self._data[neighbour], candidate_pairs, max_degree
                    )
            entry_points = [node_id for _, node_id in found] or [entry]

        if level > self._max_level:
            self._max_level = level
            self._entry_point = node

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #

    def search(
        self, query: np.ndarray, k: int, *, ef_search: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(ids, squared_distances)`` of the ``k`` approximate NNs."""
        if self._data is None or self._entry_point is None:
            raise NotFittedError("HNSWIndex must be fitted before use")
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self._data.shape[1]:
            raise DimensionMismatchError(
                f"query has dimension {vec.shape[0]}, index expects "
                f"{self._data.shape[1]}"
            )
        ef = max(k, ef_search if ef_search is not None else max(2 * k, 50))

        entry = self._entry_point
        for layer in range(self._max_level, 0, -1):
            improved = True
            while improved:
                improved = False
                for neighbour in self._layers[layer].get(entry, []):
                    if self._distance(vec, neighbour) < self._distance(vec, entry):
                        entry = neighbour
                        improved = True

        found = self._search_layer(vec, [entry], ef, 0)
        top = found[:k]
        ids = np.asarray([node for _, node in top], dtype=np.int64)
        dists = np.asarray([dist for dist, _ in top], dtype=np.float64)
        return ids, dists

    def degree_statistics(self) -> dict[str, float]:
        """Mean/max out-degree of layer 0 (diagnostic helper)."""
        if not self._layers:
            raise NotFittedError("HNSWIndex must be fitted before use")
        degrees = np.asarray([len(v) for v in self._layers[0].values()], dtype=np.int64)
        return {
            "mean_degree": float(degrees.mean()),
            "max_degree": float(degrees.max()),
            "n_layers": float(len(self._layers)),
        }


__all__ = ["HNSWIndex"]
