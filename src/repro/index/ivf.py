"""Inverted-file (IVF) coarse index.

The IVF index clusters the data with KMeans, builds one bucket (inverted
list) per cluster, and answers queries by scanning only the ``nprobe``
buckets whose centroids are closest to the query.  Section 4 of the paper
combines RaBitQ (and the PQ/OPQ baselines) with this index: quantization
codes are stored per bucket, and the per-cluster centroid doubles as the
normalization centroid of RaBitQ.

Probing supports two strategies.  ``"exact"`` (the default) ranks every
centroid per query with the metric's key kernel — the historical behaviour
and the equivalence oracle.  ``"graph"`` navigates an HNSW graph built over
the centroids (deterministically, from a fixed seed, so rebuilds after
``fit``/``compact`` or when loading a pre-v7 archive are bit-identical),
evaluating keys only along the beam-search frontier — at million-vector
scale with ~4k centroids this cuts the per-query probe cost from "every
centroid" to "a few beam neighbourhoods".

After :meth:`IVFIndex.fit` the inverted lists are mutable without
re-clustering: :meth:`IVFIndex.assign` finds the nearest existing centroid
for new vectors, :meth:`IVFIndex.append` adds their ids to the buckets, and
:meth:`IVFIndex.keep_rows` drops ids during tombstone compaction (remapping
the surviving ids to their new, contiguous positions).  Because ids are
always appended in ascending order and compaction remaps monotonically,
every bucket's id list stays sorted — which lets the persistence layer
reconstruct the buckets from the flat assignment array alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metric import L2, resolve_metric
from repro.exceptions import (
    DimensionMismatchError,
    EmptyDatasetError,
    InvalidParameterError,
    NotFittedError,
)
from repro.index.hnsw import STAT_KEY_EVALS, HNSWIndex
from repro.substrates.kmeans import kmeans_fit
from repro.substrates.linalg import (
    as_float_matrix,
    squared_distances_to_points,
    topk_indices,
)
from repro.substrates.rng import RngLike, ensure_rng


#: Valid centroid-probing strategies: ``"exact"`` scans every centroid with
#: the metric's key kernel (the historical behaviour and the equivalence
#: oracle); ``"graph"`` routes the ranking through an HNSW graph built over
#: the centroids, evaluating keys only along the beam-search frontier.
PROBE_STRATEGIES = ("exact", "graph")

#: Construction parameters of the centroid graph.  The build is a pure
#: function of the centroid matrix: the RNG driving HNSW level draws is
#: always seeded with :data:`CENTROID_GRAPH_SEED`, so ``fit``/``compact``
#: rebuilds — and on-demand rebuilds when loading a pre-v7 archive — produce
#: bit-identical graphs.
CENTROID_GRAPH_M = 8
CENTROID_GRAPH_EF_CONSTRUCTION = 80
CENTROID_GRAPH_SEED = 0x52425147  # "RBQG"


def default_graph_ef(nprobe: int, n_clusters: int) -> int:
    """Default beam width for graph probing.

    Wide enough that the top-``nprobe`` centroids are found with high
    probability (the bench gates recall against exact probing), clamped to
    the cluster count — at ``ef == n_clusters`` beam search degenerates to
    an exhaustive ranked scan and reproduces exact probing's candidate set.
    """
    return min(int(n_clusters), max(4 * int(nprobe), 64))


def default_n_clusters(n_vectors: int) -> int:
    """Heuristic cluster count scaling with dataset size.

    The paper (following Faiss guidance) uses 4096 clusters for million-scale
    datasets; this helper scales that choice as roughly ``4 * sqrt(N)``,
    clamped so that the average bucket keeps a sensible occupancy at
    laptop-scale sizes.
    """
    if n_vectors <= 0:
        raise InvalidParameterError("n_vectors must be positive")
    estimate = int(round(4.0 * np.sqrt(n_vectors)))
    return max(1, min(estimate, n_vectors, 4096))


@dataclass(frozen=True)
class IVFBucket:
    """One inverted list: the ids of the vectors assigned to a centroid."""

    centroid_id: int
    vector_ids: np.ndarray

    def __len__(self) -> int:
        return int(self.vector_ids.shape[0])


class IVFIndex:
    """KMeans-based inverted-file index.

    Parameters
    ----------
    n_clusters:
        Number of coarse centroids; ``None`` applies
        :func:`default_n_clusters` at fit time.
    kmeans_iters:
        Lloyd iterations of the coarse quantizer.
    rng:
        Seed or generator.
    probe_strategy:
        ``"exact"`` (default) ranks every centroid per query with the
        metric's key kernel; ``"graph"`` navigates an HNSW graph built over
        the centroids (see :meth:`centroid_graph`), evaluating keys only
        for visited nodes.  The strategy is a property and may be switched
        on a fitted index at any time; the graph is built lazily on first
        graph probe and invalidated whenever centroids are (re)installed.
    """

    def __init__(
        self,
        n_clusters: int | None = None,
        *,
        kmeans_iters: int = 15,
        rng: RngLike = None,
        probe_strategy: str = "exact",
    ) -> None:
        if n_clusters is not None and n_clusters <= 0:
            raise InvalidParameterError("n_clusters must be positive when given")
        if probe_strategy not in PROBE_STRATEGIES:
            raise InvalidParameterError(
                f"probe_strategy must be one of {PROBE_STRATEGIES}"
            )
        self.n_clusters = n_clusters
        self.kmeans_iters = int(kmeans_iters)
        self._rng = ensure_rng(rng)
        self._probe_strategy = probe_strategy
        #: Beam-width override for graph probing; ``None`` applies
        #: :func:`default_graph_ef` per query (``probe``'s ``ef=`` argument
        #: overrides both).
        self.probe_ef: int | None = None
        self._centroids: np.ndarray | None = None
        self._centroid_sq: np.ndarray | None = None
        self._centroid_graph: HNSWIndex | None = None
        self._buckets: list[IVFBucket] | None = None
        self._assignments: np.ndarray | None = None
        self._dim: int | None = None

    @property
    def probe_strategy(self) -> str:
        """The active probing strategy: ``"exact"`` or ``"graph"``."""
        return self._probe_strategy

    @probe_strategy.setter
    def probe_strategy(self, strategy: str) -> None:
        if strategy not in PROBE_STRATEGIES:
            raise InvalidParameterError(
                f"probe_strategy must be one of {PROBE_STRATEGIES}"
            )
        self._probe_strategy = strategy

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._centroids is not None

    @property
    def centroids(self) -> np.ndarray:
        """Coarse centroids, shape ``(n_clusters, dim)``."""
        if self._centroids is None:
            raise NotFittedError("IVFIndex must be fitted before use")
        return self._centroids

    @property
    def buckets(self) -> list[IVFBucket]:
        """All inverted lists."""
        if self._buckets is None:
            raise NotFittedError("IVFIndex must be fitted before use")
        return self._buckets

    @property
    def assignments(self) -> np.ndarray:
        """Cluster id of every indexed vector."""
        if self._assignments is None:
            raise NotFittedError("IVFIndex must be fitted before use")
        return self._assignments

    @property
    def centroid_sq_norms(self) -> np.ndarray:
        """``||c||^2`` per centroid (eagerly cached, see ``_install_centroids``)."""
        if self._centroid_sq is None:
            raise NotFittedError("IVFIndex must be fitted before use")
        return self._centroid_sq

    def _install_centroids(self, centroids: np.ndarray) -> None:
        """Set the centroid matrix and its squared-norm cache atomically.

        Every path that installs centroids (``fit``, ``from_state``) must go
        through this helper: the probe kernel's ``|c|^2`` cache is derived
        state, and computing it here — eagerly, in the same step — makes a
        stale cache unrepresentable (previously the cache was lazily filled
        by the first probe and only *reset* on re-fit, so any future path
        installing centroids without a reset would have served stale norms).
        Eager computation also keeps concurrent probing read-only.
        """
        self._centroids = centroids
        self._centroid_sq = np.einsum("ij,ij->i", centroids, centroids)
        # The centroid graph is derived state: invalidate it whenever the
        # centroids change so the next graph probe rebuilds it (always from
        # the fixed CENTROID_GRAPH_SEED, hence deterministically).
        self._centroid_graph = None

    def centroid_graph(self) -> HNSWIndex:
        """The HNSW graph over the centroids, built lazily and deterministically.

        A pure function of the centroid matrix: construction always seeds
        its level RNG with :data:`CENTROID_GRAPH_SEED`, so two indexes with
        equal centroids carry bit-identical graphs — which is what lets
        pre-v7 archives (no persisted graph) rebuild on demand and still
        match a v7 round-trip exactly.  The build is idempotent, so a
        concurrent first probe at worst duplicates work, never diverges.
        """
        if self._centroid_graph is None:
            self._centroid_graph = HNSWIndex(
                m=CENTROID_GRAPH_M,
                ef_construction=CENTROID_GRAPH_EF_CONSTRUCTION,
                rng=CENTROID_GRAPH_SEED,
            ).fit(self.centroids)
        return self._centroid_graph

    def install_centroid_graph(self, graph: HNSWIndex) -> None:
        """Adopt a deserialized centroid graph (persistence-layer hook)."""
        if not isinstance(graph, HNSWIndex):
            raise InvalidParameterError("graph must be an HNSWIndex")
        centroids = self.centroids
        if len(graph) != centroids.shape[0] or (
            graph.data.shape[1] != centroids.shape[1]
        ):
            raise InvalidParameterError(
                f"graph covers {len(graph)} nodes of dimension "
                f"{graph.data.shape[1]}, index has {centroids.shape[0]} "
                f"centroids of dimension {centroids.shape[1]}"
            )
        self._centroid_graph = graph

    def fit(
        self, data: np.ndarray, *, kmeans_sample_size: int | None = None
    ) -> "IVFIndex":
        """Cluster ``data`` and build the inverted lists.

        ``kmeans_sample_size`` bounds the KMeans training set: when given
        and smaller than ``len(data)``, the centroids are trained on that
        many rows sampled without replacement from the index RNG, and the
        full dataset is then assigned to the trained centroids in bounded
        chunks.  This is what makes million-scale fits tractable — Lloyd
        iterations cost ``O(n_train * n_clusters * dim)`` each, and the
        sample caps ``n_train`` while assignment stays exact for every row.
        """
        mat = as_float_matrix(data, "data")
        if mat.shape[0] == 0:
            raise EmptyDatasetError("cannot build an IVF index over an empty dataset")
        if kmeans_sample_size is not None and kmeans_sample_size <= 0:
            raise InvalidParameterError(
                "kmeans_sample_size must be positive when given"
            )
        self._dim = mat.shape[1]
        n_clusters = (
            self.n_clusters
            if self.n_clusters is not None
            else default_n_clusters(mat.shape[0])
        )
        n_clusters = min(n_clusters, mat.shape[0])
        if kmeans_sample_size is not None and kmeans_sample_size < mat.shape[0]:
            sample_size = max(int(kmeans_sample_size), n_clusters)
            sample = np.sort(
                self._rng.choice(mat.shape[0], size=sample_size, replace=False)
            )
            result = kmeans_fit(
                mat[sample], n_clusters, max_iter=self.kmeans_iters, rng=self._rng
            )
            self._install_centroids(result.centroids)
            self._assignments = self._assign_chunked(mat)
        else:
            result = kmeans_fit(
                mat, n_clusters, max_iter=self.kmeans_iters, rng=self._rng
            )
            self._install_centroids(result.centroids)
            self._assignments = np.asarray(result.assignments, dtype=np.int64)
        self._buckets = self._buckets_from_assignments(
            self._assignments, n_clusters
        )
        return self

    #: Row-chunk cap for :meth:`_assign_chunked`, sized so one chunk's
    #: ``(rows, n_clusters)`` float64 distance block — and the expansion
    #: temporaries behind it — stays around half a GiB even at the
    #: 4096-cluster ceiling.
    _ASSIGN_CHUNK_ROWS = 16_384

    def _assign_chunked(self, mat: np.ndarray) -> np.ndarray:
        """Nearest-centroid assignment of ``mat`` in bounded row chunks.

        Chunking changes memory use only: each row's distance ranking —
        and the ``argmin`` low-id tie-break — is computed exactly as
        :meth:`assign` would on the full matrix.
        """
        out = np.empty(mat.shape[0], dtype=np.int64)
        for lo in range(0, mat.shape[0], self._ASSIGN_CHUNK_ROWS):
            hi = min(lo + self._ASSIGN_CHUNK_ROWS, mat.shape[0])
            out[lo:hi] = self.assign(mat[lo:hi])
        return out

    @staticmethod
    def _buckets_from_assignments(
        assignments: np.ndarray, n_clusters: int
    ) -> list[IVFBucket]:
        """Build the inverted lists from a flat assignment array.

        One stable argsort + searchsorted pass instead of a per-cluster
        ``flatnonzero`` scan: the stable sort keeps equal keys in positional
        order, so every bucket's id list comes out sorted ascending exactly
        as the per-cluster scan would produce it.
        """
        order = np.argsort(assignments, kind="stable").astype(np.int64)
        boundaries = np.searchsorted(
            assignments[order], np.arange(n_clusters + 1)
        )
        return [
            IVFBucket(
                centroid_id=cluster_id,
                vector_ids=order[boundaries[cluster_id] : boundaries[cluster_id + 1]],
            )
            for cluster_id in range(n_clusters)
        ]

    @classmethod
    def from_state(
        cls,
        centroids: np.ndarray,
        assignments: np.ndarray,
        *,
        kmeans_iters: int = 15,
        rng: RngLike = None,
        probe_strategy: str = "exact",
    ) -> "IVFIndex":
        """Rebuild a fitted index from its centroids and assignment array.

        Used by the persistence layer: because bucket id lists are always
        sorted ascending (see the module docstring), the buckets rebuilt here
        are exactly the ones that were saved.
        """
        centre = as_float_matrix(centroids, "centroids")
        assigned = np.asarray(assignments, dtype=np.int64).reshape(-1)
        if assigned.size and (
            assigned.min() < 0 or assigned.max() >= centre.shape[0]
        ):
            raise InvalidParameterError(
                "assignments reference clusters outside the centroid matrix"
            )
        index = cls(
            centre.shape[0],
            kmeans_iters=kmeans_iters,
            rng=rng,
            probe_strategy=probe_strategy,
        )
        index._install_centroids(centre)
        index._assignments = assigned
        index._dim = int(centre.shape[1])
        index._buckets = cls._buckets_from_assignments(assigned, centre.shape[0])
        return index

    # ------------------------------------------------------------------ #
    # Mutation (no re-clustering)
    # ------------------------------------------------------------------ #

    def assign(self, vectors: np.ndarray) -> np.ndarray:
        """Nearest-centroid cluster id for every row of ``vectors``.

        Ties break toward the lowest cluster id (``argmin``), so assignment
        is deterministic.
        """
        mat = as_float_matrix(vectors, "vectors")
        if self._dim is None:
            raise NotFittedError("IVFIndex must be fitted before use")
        if mat.shape[0] and mat.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"vectors have dimension {mat.shape[1]}, index expects {self._dim}"
            )
        if mat.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        dists = squared_distances_to_points(self.centroids, mat)
        return np.argmin(dists, axis=1).astype(np.int64)

    def append(self, vector_ids: np.ndarray, cluster_ids: np.ndarray) -> None:
        """Add ``vector_ids[i]`` to bucket ``cluster_ids[i]`` for all ``i``.

        ``vector_ids`` must continue the stored ids contiguously (the next
        unused position onward, in order): ids double as positions into the
        flat ``assignments`` array, and the persistence layer rebuilds the
        buckets from that array alone.  A gap would silently desynchronize
        the two, so it is rejected here.
        """
        buckets = self.buckets
        ids = np.asarray(vector_ids, dtype=np.int64).reshape(-1)
        clusters = np.asarray(cluster_ids, dtype=np.int64).reshape(-1)
        if ids.shape[0] != clusters.shape[0]:
            raise InvalidParameterError(
                "vector_ids and cluster_ids must have equal length"
            )
        if ids.shape[0] == 0:
            return
        floor = self._assignments.shape[0] if self._assignments is not None else 0
        expected = np.arange(floor, floor + ids.shape[0], dtype=np.int64)
        if not np.array_equal(ids, expected):
            raise InvalidParameterError(
                f"vector_ids must contiguously extend the index "
                f"({floor} .. {floor + ids.shape[0] - 1}, in order)"
            )
        if clusters.min() < 0 or clusters.max() >= len(buckets):
            raise InvalidParameterError("cluster_ids reference unknown clusters")
        for cid in np.unique(clusters):
            members = ids[clusters == cid]
            bucket = buckets[int(cid)]
            buckets[int(cid)] = IVFBucket(
                centroid_id=bucket.centroid_id,
                vector_ids=np.concatenate([bucket.vector_ids, members]),
            )
        self._assignments = np.concatenate([self.assignments, clusters])

    def keep_rows(self, keep: np.ndarray) -> "IVFIndex":
        """Drop all ids where ``keep`` is ``False``, remapping the survivors.

        Surviving ids are renumbered to their position among the survivors
        (the same remapping applied to the flat index), preserving relative
        order within every bucket.  Centroids are unchanged.
        """
        assignments = self.assignments
        mask = np.asarray(keep, dtype=bool).reshape(-1)
        if mask.shape[0] != assignments.shape[0]:
            raise DimensionMismatchError(
                f"keep mask has length {mask.shape[0]}, index has "
                f"{assignments.shape[0]} ids"
            )
        if mask.all():
            return self
        self._assignments = assignments[mask]
        self._buckets = self._buckets_from_assignments(
            self._assignments, len(self.buckets)
        )
        return self

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        if self._dim is None:
            raise NotFittedError("IVFIndex must be fitted before use")
        if vec.shape[0] != self._dim:
            raise DimensionMismatchError(
                f"query has dimension {vec.shape[0]}, index expects {self._dim}"
            )
        return vec

    def _probe_distances(self, vec: np.ndarray) -> np.ndarray:
        """Squared centroid distances via the norm-expansion GEMV kernel.

        ``|c - q|^2 = |c|^2 - 2 <c, q> + |q|^2`` with the centroid squared
        norms computed once when the centroids are installed (see
        :meth:`_install_centroids`; centroids never change after fitting, and
        eager computation keeps probing a pure read — safe to run from
        several threads at once).  Roughly 7x faster than the
        broadcasted-difference reduction on the probing hot path;
        :meth:`probe` and :meth:`probe_batch` both run exactly this kernel
        per query, so the two paths stay bit-identical.
        """
        centroids = self.centroids
        if self._centroid_sq is None:
            # Defensive only: unreachable via fit/from_state, which install
            # the cache eagerly alongside the centroids.
            self._centroid_sq = np.einsum("ij,ij->i", centroids, centroids)
        return self._centroid_sq - 2.0 * (centroids @ vec) + vec @ vec

    def _probe_keys(self, vec: np.ndarray, metric) -> np.ndarray:
        """Per-centroid minimization key ranking clusters for probing.

        For ``metric="l2"`` this is exactly :meth:`_probe_distances` (the
        historical norm-expansion GEMV kernel); similarity metrics rank by
        the metric itself — negated centroid inner products (MIPS) or
        negated centroid cosines — so probing follows the served metric
        instead of only expanded L2 norms.
        """
        if metric is L2 or metric.name == "l2":
            return self._probe_distances(vec)
        return metric.probe_key(self.centroids, self.centroid_sq_norms, vec)

    def _subset_keys(
        self, cluster_ids: np.ndarray, vec: np.ndarray, metric
    ) -> np.ndarray:
        """:meth:`_probe_keys` restricted to ``cluster_ids``.

        Uses the same norm-expansion / probe-key arithmetic on the indexed
        centroid rows, so for ``cluster_ids == arange(n_clusters)`` the
        result is bit-identical to the full scan.
        """
        centroids = self.centroids[cluster_ids]
        sq_norms = self.centroid_sq_norms[cluster_ids]
        if metric is L2 or metric.name == "l2":
            return sq_norms - 2.0 * (centroids @ vec) + vec @ vec
        return metric.probe_key(centroids, sq_norms, vec)

    def _exact_probe(
        self, vec: np.ndarray, nprobe: int, metric, stats: dict | None
    ) -> np.ndarray:
        """Exhaustive key ranking (the historical probe and the oracle)."""
        keys = self._probe_keys(vec, metric)
        if stats is not None:
            stats[STAT_KEY_EVALS] = stats.get(STAT_KEY_EVALS, 0) + keys.shape[0]
        return topk_indices(keys, nprobe).astype(np.int64)

    def _graph_probe(
        self,
        vec: np.ndarray,
        nprobe: int,
        metric,
        ef: int | None,
        stats: dict | None,
    ) -> np.ndarray:
        """Rank clusters by beam search over the centroid graph.

        The beam width is ``ef`` (then ``self.probe_ef``, then
        :func:`default_graph_ef`), clamped to at least ``nprobe``; the
        beam's candidates are then re-ranked by :meth:`_subset_keys`, the
        exact scan's kernel restricted to the candidate rows, so the
        returned ids follow the same key order and tie-breaking exact
        probing uses.  Should the beam reach fewer than ``nprobe`` nodes
        (possible only on a disconnected graph), the query falls back to
        the exact scan rather than return a short row.
        """
        graph = self.centroid_graph()
        if ef is None:
            ef = self.probe_ef
        if ef is None:
            ef = default_graph_ef(nprobe, len(graph))
        beam = max(int(ef), nprobe)
        # The beam generates candidates; the final ranking recomputes their
        # keys in one id-sorted subset call.  The beam's incremental
        # neighbour-batch keys can differ from a full scan by float ulps
        # (BLAS kernels round differently at different operand shapes), so
        # selecting directly from them would make the nprobe boundary
        # diverge from the exact scan.  Re-ranking the sorted candidate
        # subset restores the exact scan's arithmetic and lowest-id
        # tie-breaking — at ``ef >= n_clusters`` the subset is the whole
        # centroid matrix in original order and the probed set is
        # bit-identical to ``_exact_probe``.
        ids, _ = graph.search(
            vec, beam, ef_search=beam, metric=metric, stats=stats
        )
        if ids.shape[0] < nprobe:
            return self._exact_probe(vec, nprobe, metric, stats)
        cands = np.sort(ids)
        keys = self._subset_keys(cands, vec, metric)
        if stats is not None:
            stats[STAT_KEY_EVALS] = (
                stats.get(STAT_KEY_EVALS, 0) + cands.shape[0]
            )
        return cands[topk_indices(keys, nprobe)].astype(np.int64)

    def probe(
        self,
        query: np.ndarray,
        nprobe: int,
        *,
        metric="l2",
        ef: int | None = None,
        stats: dict | None = None,
    ) -> np.ndarray:
        """Ids of the ``nprobe`` clusters ranked best by ``metric``.

        The default ``metric="l2"`` probes the centroids closest to the
        query (the historical behaviour, bit-identical); ``"ip"`` /
        ``"cosine"`` probe the centroids with the largest inner product /
        cosine similarity.  With ``probe_strategy="graph"`` the ranking
        runs as a beam search over the centroid HNSW graph instead of an
        exhaustive scan; ``ef`` overrides the beam width for this call
        (ignored by the exact strategy), and at ``ef >= n_clusters`` the
        beam covers every (reachable) centroid, reproducing the exact
        scan's candidate set.  ``stats``, when given a dict, accumulates
        ``"n_key_evals"`` — the number of centroid keys evaluated.
        """
        if nprobe <= 0:
            raise InvalidParameterError("nprobe must be positive")
        resolved = resolve_metric(metric)
        vec = self._check_query(query)
        nprobe = min(nprobe, self.centroids.shape[0])
        if self._probe_strategy == "graph":
            return self._graph_probe(vec, nprobe, resolved, ef, stats)
        return self._exact_probe(vec, nprobe, resolved, stats)

    def probe_batch(
        self,
        queries: np.ndarray,
        nprobe: int,
        *,
        metric="l2",
        ef: int | None = None,
        stats: dict | None = None,
    ) -> np.ndarray:
        """Probed cluster ids for every row of ``queries`` at once.

        Returns an ``(n_queries, min(nprobe, n_clusters))`` matrix whose row
        ``i`` equals ``probe(queries[i], nprobe, metric=metric)`` exactly:
        every row runs the identical per-query ranking kernel — exact scan
        or graph beam search, per ``probe_strategy`` — and the identical
        selection as the per-query path.
        """
        if nprobe <= 0:
            raise InvalidParameterError("nprobe must be positive")
        resolved = resolve_metric(metric)
        mat = as_float_matrix(queries, "queries")
        if self._dim is None:
            raise NotFittedError("IVFIndex must be fitted before use")
        if mat.shape[0] and mat.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"queries have dimension {mat.shape[1]}, index expects {self._dim}"
            )
        centroids = self.centroids
        nprobe = min(nprobe, centroids.shape[0])
        out = np.empty((mat.shape[0], nprobe), dtype=np.int64)
        if self._probe_strategy == "graph":
            for i in range(mat.shape[0]):
                out[i] = self._graph_probe(mat[i], nprobe, resolved, ef, stats)
        else:
            for i in range(mat.shape[0]):
                out[i] = self._exact_probe(mat[i], nprobe, resolved, stats)
        return out

    def candidates(
        self, query: np.ndarray, nprobe: int, *, metric="l2"
    ) -> np.ndarray:
        """All vector ids contained in the probed clusters (concatenated).

        ``metric`` selects the probing key exactly as in :meth:`probe`, so
        candidate enumeration follows the served metric (previously this
        always probed under L2 regardless of the metric the caller served).
        """
        cluster_ids = self.probe(query, nprobe, metric=metric)
        buckets = self.buckets
        lists = [buckets[int(cid)].vector_ids for cid in cluster_ids]
        if not lists:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(lists)

    def bucket_sizes(self) -> np.ndarray:
        """Number of vectors per bucket."""
        return np.asarray([len(bucket) for bucket in self.buckets], dtype=np.int64)


__all__ = [
    "IVFIndex",
    "IVFBucket",
    "default_n_clusters",
    "default_graph_ef",
    "PROBE_STRATEGIES",
    "CENTROID_GRAPH_M",
    "CENTROID_GRAPH_EF_CONSTRUCTION",
    "CENTROID_GRAPH_SEED",
]
