"""Inverted-file (IVF) coarse index.

The IVF index clusters the data with KMeans, builds one bucket (inverted
list) per cluster, and answers queries by scanning only the ``nprobe``
buckets whose centroids are closest to the query.  Section 4 of the paper
combines RaBitQ (and the PQ/OPQ baselines) with this index: quantization
codes are stored per bucket, and the per-cluster centroid doubles as the
normalization centroid of RaBitQ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import (
    DimensionMismatchError,
    EmptyDatasetError,
    InvalidParameterError,
    NotFittedError,
)
from repro.substrates.kmeans import kmeans_fit
from repro.substrates.linalg import (
    as_float_matrix,
    squared_distances_to_point,
    squared_distances_to_points,
    topk_indices,
)
from repro.substrates.rng import RngLike, ensure_rng


def default_n_clusters(n_vectors: int) -> int:
    """Heuristic cluster count scaling with dataset size.

    The paper (following Faiss guidance) uses 4096 clusters for million-scale
    datasets; this helper scales that choice as roughly ``4 * sqrt(N)``,
    clamped so that the average bucket keeps a sensible occupancy at
    laptop-scale sizes.
    """
    if n_vectors <= 0:
        raise InvalidParameterError("n_vectors must be positive")
    estimate = int(round(4.0 * np.sqrt(n_vectors)))
    return max(1, min(estimate, n_vectors, 4096))


@dataclass(frozen=True)
class IVFBucket:
    """One inverted list: the ids of the vectors assigned to a centroid."""

    centroid_id: int
    vector_ids: np.ndarray

    def __len__(self) -> int:
        return int(self.vector_ids.shape[0])


class IVFIndex:
    """KMeans-based inverted-file index.

    Parameters
    ----------
    n_clusters:
        Number of coarse centroids; ``None`` applies
        :func:`default_n_clusters` at fit time.
    kmeans_iters:
        Lloyd iterations of the coarse quantizer.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        n_clusters: int | None = None,
        *,
        kmeans_iters: int = 15,
        rng: RngLike = None,
    ) -> None:
        if n_clusters is not None and n_clusters <= 0:
            raise InvalidParameterError("n_clusters must be positive when given")
        self.n_clusters = n_clusters
        self.kmeans_iters = int(kmeans_iters)
        self._rng = ensure_rng(rng)
        self._centroids: np.ndarray | None = None
        self._buckets: list[IVFBucket] | None = None
        self._assignments: np.ndarray | None = None
        self._dim: int | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._centroids is not None

    @property
    def centroids(self) -> np.ndarray:
        """Coarse centroids, shape ``(n_clusters, dim)``."""
        if self._centroids is None:
            raise NotFittedError("IVFIndex must be fitted before use")
        return self._centroids

    @property
    def buckets(self) -> list[IVFBucket]:
        """All inverted lists."""
        if self._buckets is None:
            raise NotFittedError("IVFIndex must be fitted before use")
        return self._buckets

    @property
    def assignments(self) -> np.ndarray:
        """Cluster id of every indexed vector."""
        if self._assignments is None:
            raise NotFittedError("IVFIndex must be fitted before use")
        return self._assignments

    def fit(self, data: np.ndarray) -> "IVFIndex":
        """Cluster ``data`` and build the inverted lists."""
        mat = as_float_matrix(data, "data")
        if mat.shape[0] == 0:
            raise EmptyDatasetError("cannot build an IVF index over an empty dataset")
        self._dim = mat.shape[1]
        n_clusters = (
            self.n_clusters
            if self.n_clusters is not None
            else default_n_clusters(mat.shape[0])
        )
        n_clusters = min(n_clusters, mat.shape[0])
        result = kmeans_fit(
            mat, n_clusters, max_iter=self.kmeans_iters, rng=self._rng
        )
        self._centroids = result.centroids
        self._assignments = result.assignments
        self._buckets = [
            IVFBucket(
                centroid_id=cluster_id,
                vector_ids=np.flatnonzero(result.assignments == cluster_id).astype(
                    np.int64
                ),
            )
            for cluster_id in range(n_clusters)
        ]
        return self

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        if self._dim is None:
            raise NotFittedError("IVFIndex must be fitted before use")
        if vec.shape[0] != self._dim:
            raise DimensionMismatchError(
                f"query has dimension {vec.shape[0]}, index expects {self._dim}"
            )
        return vec

    def probe(self, query: np.ndarray, nprobe: int) -> np.ndarray:
        """Ids of the ``nprobe`` clusters whose centroids are closest to ``query``."""
        if nprobe <= 0:
            raise InvalidParameterError("nprobe must be positive")
        vec = self._check_query(query)
        dists = squared_distances_to_point(self.centroids, vec)
        nprobe = min(nprobe, dists.shape[0])
        return topk_indices(dists, nprobe).astype(np.int64)

    def probe_batch(self, queries: np.ndarray, nprobe: int) -> np.ndarray:
        """Probed cluster ids for every row of ``queries`` at once.

        Returns an ``(n_queries, min(nprobe, n_clusters))`` matrix whose row
        ``i`` equals ``probe(queries[i], nprobe)`` exactly: the
        centroid-distance matrix is computed with the same elementwise
        arithmetic as the per-query path (broadcasted difference +
        ``einsum`` reduction), and the selection runs the identical
        argpartition/argsort code per row.
        """
        if nprobe <= 0:
            raise InvalidParameterError("nprobe must be positive")
        mat = as_float_matrix(queries, "queries")
        if self._dim is None:
            raise NotFittedError("IVFIndex must be fitted before use")
        if mat.shape[0] and mat.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"queries have dimension {mat.shape[1]}, index expects {self._dim}"
            )
        centroids = self.centroids
        dists = squared_distances_to_points(centroids, mat)
        nprobe = min(nprobe, centroids.shape[0])
        out = np.empty((mat.shape[0], nprobe), dtype=np.int64)
        for i in range(mat.shape[0]):
            out[i] = topk_indices(dists[i], nprobe)
        return out

    def candidates(self, query: np.ndarray, nprobe: int) -> np.ndarray:
        """All vector ids contained in the probed clusters (concatenated)."""
        cluster_ids = self.probe(query, nprobe)
        buckets = self.buckets
        lists = [buckets[int(cid)].vector_ids for cid in cluster_ids]
        if not lists:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(lists)

    def bucket_sizes(self) -> np.ndarray:
        """Number of vectors per bucket."""
        return np.asarray([len(bucket) for bucket in self.buckets], dtype=np.int64)


__all__ = ["IVFIndex", "IVFBucket", "default_n_clusters"]
