"""Inverted-file (IVF) coarse index.

The IVF index clusters the data with KMeans, builds one bucket (inverted
list) per cluster, and answers queries by scanning only the ``nprobe``
buckets whose centroids are closest to the query.  Section 4 of the paper
combines RaBitQ (and the PQ/OPQ baselines) with this index: quantization
codes are stored per bucket, and the per-cluster centroid doubles as the
normalization centroid of RaBitQ.

After :meth:`IVFIndex.fit` the inverted lists are mutable without
re-clustering: :meth:`IVFIndex.assign` finds the nearest existing centroid
for new vectors, :meth:`IVFIndex.append` adds their ids to the buckets, and
:meth:`IVFIndex.keep_rows` drops ids during tombstone compaction (remapping
the surviving ids to their new, contiguous positions).  Because ids are
always appended in ascending order and compaction remaps monotonically,
every bucket's id list stays sorted — which lets the persistence layer
reconstruct the buckets from the flat assignment array alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metric import L2, resolve_metric
from repro.exceptions import (
    DimensionMismatchError,
    EmptyDatasetError,
    InvalidParameterError,
    NotFittedError,
)
from repro.substrates.kmeans import kmeans_fit
from repro.substrates.linalg import (
    as_float_matrix,
    squared_distances_to_points,
    topk_indices,
)
from repro.substrates.rng import RngLike, ensure_rng


def default_n_clusters(n_vectors: int) -> int:
    """Heuristic cluster count scaling with dataset size.

    The paper (following Faiss guidance) uses 4096 clusters for million-scale
    datasets; this helper scales that choice as roughly ``4 * sqrt(N)``,
    clamped so that the average bucket keeps a sensible occupancy at
    laptop-scale sizes.
    """
    if n_vectors <= 0:
        raise InvalidParameterError("n_vectors must be positive")
    estimate = int(round(4.0 * np.sqrt(n_vectors)))
    return max(1, min(estimate, n_vectors, 4096))


@dataclass(frozen=True)
class IVFBucket:
    """One inverted list: the ids of the vectors assigned to a centroid."""

    centroid_id: int
    vector_ids: np.ndarray

    def __len__(self) -> int:
        return int(self.vector_ids.shape[0])


class IVFIndex:
    """KMeans-based inverted-file index.

    Parameters
    ----------
    n_clusters:
        Number of coarse centroids; ``None`` applies
        :func:`default_n_clusters` at fit time.
    kmeans_iters:
        Lloyd iterations of the coarse quantizer.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        n_clusters: int | None = None,
        *,
        kmeans_iters: int = 15,
        rng: RngLike = None,
    ) -> None:
        if n_clusters is not None and n_clusters <= 0:
            raise InvalidParameterError("n_clusters must be positive when given")
        self.n_clusters = n_clusters
        self.kmeans_iters = int(kmeans_iters)
        self._rng = ensure_rng(rng)
        self._centroids: np.ndarray | None = None
        self._centroid_sq: np.ndarray | None = None
        self._buckets: list[IVFBucket] | None = None
        self._assignments: np.ndarray | None = None
        self._dim: int | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._centroids is not None

    @property
    def centroids(self) -> np.ndarray:
        """Coarse centroids, shape ``(n_clusters, dim)``."""
        if self._centroids is None:
            raise NotFittedError("IVFIndex must be fitted before use")
        return self._centroids

    @property
    def buckets(self) -> list[IVFBucket]:
        """All inverted lists."""
        if self._buckets is None:
            raise NotFittedError("IVFIndex must be fitted before use")
        return self._buckets

    @property
    def assignments(self) -> np.ndarray:
        """Cluster id of every indexed vector."""
        if self._assignments is None:
            raise NotFittedError("IVFIndex must be fitted before use")
        return self._assignments

    @property
    def centroid_sq_norms(self) -> np.ndarray:
        """``||c||^2`` per centroid (eagerly cached, see ``_install_centroids``)."""
        if self._centroid_sq is None:
            raise NotFittedError("IVFIndex must be fitted before use")
        return self._centroid_sq

    def _install_centroids(self, centroids: np.ndarray) -> None:
        """Set the centroid matrix and its squared-norm cache atomically.

        Every path that installs centroids (``fit``, ``from_state``) must go
        through this helper: the probe kernel's ``|c|^2`` cache is derived
        state, and computing it here — eagerly, in the same step — makes a
        stale cache unrepresentable (previously the cache was lazily filled
        by the first probe and only *reset* on re-fit, so any future path
        installing centroids without a reset would have served stale norms).
        Eager computation also keeps concurrent probing read-only.
        """
        self._centroids = centroids
        self._centroid_sq = np.einsum("ij,ij->i", centroids, centroids)

    def fit(self, data: np.ndarray) -> "IVFIndex":
        """Cluster ``data`` and build the inverted lists."""
        mat = as_float_matrix(data, "data")
        if mat.shape[0] == 0:
            raise EmptyDatasetError("cannot build an IVF index over an empty dataset")
        self._dim = mat.shape[1]
        n_clusters = (
            self.n_clusters
            if self.n_clusters is not None
            else default_n_clusters(mat.shape[0])
        )
        n_clusters = min(n_clusters, mat.shape[0])
        result = kmeans_fit(
            mat, n_clusters, max_iter=self.kmeans_iters, rng=self._rng
        )
        self._install_centroids(result.centroids)
        self._assignments = np.asarray(result.assignments, dtype=np.int64)
        self._buckets = self._buckets_from_assignments(
            self._assignments, n_clusters
        )
        return self

    @staticmethod
    def _buckets_from_assignments(
        assignments: np.ndarray, n_clusters: int
    ) -> list[IVFBucket]:
        """Build the inverted lists from a flat assignment array.

        One stable argsort + searchsorted pass instead of a per-cluster
        ``flatnonzero`` scan: the stable sort keeps equal keys in positional
        order, so every bucket's id list comes out sorted ascending exactly
        as the per-cluster scan would produce it.
        """
        order = np.argsort(assignments, kind="stable").astype(np.int64)
        boundaries = np.searchsorted(
            assignments[order], np.arange(n_clusters + 1)
        )
        return [
            IVFBucket(
                centroid_id=cluster_id,
                vector_ids=order[boundaries[cluster_id] : boundaries[cluster_id + 1]],
            )
            for cluster_id in range(n_clusters)
        ]

    @classmethod
    def from_state(
        cls,
        centroids: np.ndarray,
        assignments: np.ndarray,
        *,
        kmeans_iters: int = 15,
        rng: RngLike = None,
    ) -> "IVFIndex":
        """Rebuild a fitted index from its centroids and assignment array.

        Used by the persistence layer: because bucket id lists are always
        sorted ascending (see the module docstring), the buckets rebuilt here
        are exactly the ones that were saved.
        """
        centre = as_float_matrix(centroids, "centroids")
        assigned = np.asarray(assignments, dtype=np.int64).reshape(-1)
        if assigned.size and (
            assigned.min() < 0 or assigned.max() >= centre.shape[0]
        ):
            raise InvalidParameterError(
                "assignments reference clusters outside the centroid matrix"
            )
        index = cls(centre.shape[0], kmeans_iters=kmeans_iters, rng=rng)
        index._install_centroids(centre)
        index._assignments = assigned
        index._dim = int(centre.shape[1])
        index._buckets = cls._buckets_from_assignments(assigned, centre.shape[0])
        return index

    # ------------------------------------------------------------------ #
    # Mutation (no re-clustering)
    # ------------------------------------------------------------------ #

    def assign(self, vectors: np.ndarray) -> np.ndarray:
        """Nearest-centroid cluster id for every row of ``vectors``.

        Ties break toward the lowest cluster id (``argmin``), so assignment
        is deterministic.
        """
        mat = as_float_matrix(vectors, "vectors")
        if self._dim is None:
            raise NotFittedError("IVFIndex must be fitted before use")
        if mat.shape[0] and mat.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"vectors have dimension {mat.shape[1]}, index expects {self._dim}"
            )
        if mat.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        dists = squared_distances_to_points(self.centroids, mat)
        return np.argmin(dists, axis=1).astype(np.int64)

    def append(self, vector_ids: np.ndarray, cluster_ids: np.ndarray) -> None:
        """Add ``vector_ids[i]`` to bucket ``cluster_ids[i]`` for all ``i``.

        ``vector_ids`` must continue the stored ids contiguously (the next
        unused position onward, in order): ids double as positions into the
        flat ``assignments`` array, and the persistence layer rebuilds the
        buckets from that array alone.  A gap would silently desynchronize
        the two, so it is rejected here.
        """
        buckets = self.buckets
        ids = np.asarray(vector_ids, dtype=np.int64).reshape(-1)
        clusters = np.asarray(cluster_ids, dtype=np.int64).reshape(-1)
        if ids.shape[0] != clusters.shape[0]:
            raise InvalidParameterError(
                "vector_ids and cluster_ids must have equal length"
            )
        if ids.shape[0] == 0:
            return
        floor = self._assignments.shape[0] if self._assignments is not None else 0
        expected = np.arange(floor, floor + ids.shape[0], dtype=np.int64)
        if not np.array_equal(ids, expected):
            raise InvalidParameterError(
                f"vector_ids must contiguously extend the index "
                f"({floor} .. {floor + ids.shape[0] - 1}, in order)"
            )
        if clusters.min() < 0 or clusters.max() >= len(buckets):
            raise InvalidParameterError("cluster_ids reference unknown clusters")
        for cid in np.unique(clusters):
            members = ids[clusters == cid]
            bucket = buckets[int(cid)]
            buckets[int(cid)] = IVFBucket(
                centroid_id=bucket.centroid_id,
                vector_ids=np.concatenate([bucket.vector_ids, members]),
            )
        self._assignments = np.concatenate([self.assignments, clusters])

    def keep_rows(self, keep: np.ndarray) -> "IVFIndex":
        """Drop all ids where ``keep`` is ``False``, remapping the survivors.

        Surviving ids are renumbered to their position among the survivors
        (the same remapping applied to the flat index), preserving relative
        order within every bucket.  Centroids are unchanged.
        """
        assignments = self.assignments
        mask = np.asarray(keep, dtype=bool).reshape(-1)
        if mask.shape[0] != assignments.shape[0]:
            raise DimensionMismatchError(
                f"keep mask has length {mask.shape[0]}, index has "
                f"{assignments.shape[0]} ids"
            )
        if mask.all():
            return self
        self._assignments = assignments[mask]
        self._buckets = self._buckets_from_assignments(
            self._assignments, len(self.buckets)
        )
        return self

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        if self._dim is None:
            raise NotFittedError("IVFIndex must be fitted before use")
        if vec.shape[0] != self._dim:
            raise DimensionMismatchError(
                f"query has dimension {vec.shape[0]}, index expects {self._dim}"
            )
        return vec

    def _probe_distances(self, vec: np.ndarray) -> np.ndarray:
        """Squared centroid distances via the norm-expansion GEMV kernel.

        ``|c - q|^2 = |c|^2 - 2 <c, q> + |q|^2`` with the centroid squared
        norms computed once when the centroids are installed (see
        :meth:`_install_centroids`; centroids never change after fitting, and
        eager computation keeps probing a pure read — safe to run from
        several threads at once).  Roughly 7x faster than the
        broadcasted-difference reduction on the probing hot path;
        :meth:`probe` and :meth:`probe_batch` both run exactly this kernel
        per query, so the two paths stay bit-identical.
        """
        centroids = self.centroids
        if self._centroid_sq is None:
            # Defensive only: unreachable via fit/from_state, which install
            # the cache eagerly alongside the centroids.
            self._centroid_sq = np.einsum("ij,ij->i", centroids, centroids)
        return self._centroid_sq - 2.0 * (centroids @ vec) + vec @ vec

    def _probe_keys(self, vec: np.ndarray, metric) -> np.ndarray:
        """Per-centroid minimization key ranking clusters for probing.

        For ``metric="l2"`` this is exactly :meth:`_probe_distances` (the
        historical norm-expansion GEMV kernel); similarity metrics rank by
        the metric itself — negated centroid inner products (MIPS) or
        negated centroid cosines — so probing follows the served metric
        instead of only expanded L2 norms.
        """
        if metric is L2 or metric.name == "l2":
            return self._probe_distances(vec)
        return metric.probe_key(self.centroids, self.centroid_sq_norms, vec)

    def probe(self, query: np.ndarray, nprobe: int, *, metric="l2") -> np.ndarray:
        """Ids of the ``nprobe`` clusters ranked best by ``metric``.

        The default ``metric="l2"`` probes the centroids closest to the
        query (the historical behaviour, bit-identical); ``"ip"`` /
        ``"cosine"`` probe the centroids with the largest inner product /
        cosine similarity.
        """
        if nprobe <= 0:
            raise InvalidParameterError("nprobe must be positive")
        resolved = resolve_metric(metric)
        vec = self._check_query(query)
        keys = self._probe_keys(vec, resolved)
        nprobe = min(nprobe, keys.shape[0])
        return topk_indices(keys, nprobe).astype(np.int64)

    def probe_batch(
        self, queries: np.ndarray, nprobe: int, *, metric="l2"
    ) -> np.ndarray:
        """Probed cluster ids for every row of ``queries`` at once.

        Returns an ``(n_queries, min(nprobe, n_clusters))`` matrix whose row
        ``i`` equals ``probe(queries[i], nprobe, metric=metric)`` exactly:
        every row runs the identical per-query ranking kernel and the
        identical argpartition/argsort selection as the per-query path.
        """
        if nprobe <= 0:
            raise InvalidParameterError("nprobe must be positive")
        resolved = resolve_metric(metric)
        mat = as_float_matrix(queries, "queries")
        if self._dim is None:
            raise NotFittedError("IVFIndex must be fitted before use")
        if mat.shape[0] and mat.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"queries have dimension {mat.shape[1]}, index expects {self._dim}"
            )
        centroids = self.centroids
        nprobe = min(nprobe, centroids.shape[0])
        out = np.empty((mat.shape[0], nprobe), dtype=np.int64)
        for i in range(mat.shape[0]):
            out[i] = topk_indices(self._probe_keys(mat[i], resolved), nprobe)
        return out

    def candidates(self, query: np.ndarray, nprobe: int) -> np.ndarray:
        """All vector ids contained in the probed clusters (concatenated)."""
        cluster_ids = self.probe(query, nprobe)
        buckets = self.buckets
        lists = [buckets[int(cid)].vector_ids for cid in cluster_ids]
        if not lists:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(lists)

    def bucket_sizes(self) -> np.ndarray:
        """Number of vectors per bucket."""
        return np.asarray([len(bucket) for bucket in self.buckets], dtype=np.int64)


__all__ = ["IVFIndex", "IVFBucket", "default_n_clusters"]
