"""Contiguous code arena: cluster-grouped storage for quantized codes.

The pre-arena searcher kept one :class:`repro.core.quantizer.RaBitQ` object
per IVF cluster, each owning its own small code matrix and per-vector float
arrays.  Scanning ``nprobe`` clusters then meant iterating Python objects and
concatenating dozens of small arrays per query.  The :class:`CodeArena`
replaces that object soup with one contiguous, cluster-grouped layout:

* ``codes`` — one ``(capacity, n_words)`` ``uint64`` matrix of packed codes;
* ``bits`` — the same codes unpacked to 0/1 ``uint8`` (the operand of the
  integer-exact GEMM/GEMV estimation kernel; 1 byte per code bit);
* ``segs`` — the same codes grouped into 4-bit segment ids
  (:func:`repro.core.lut.split_into_segments`; the operand of the
  fast-scan LUT estimation kernel, ``estimation_mode="lut"``/``"lut8"``);
* ``consts`` — one ``(N_CONSTS, capacity)`` float64 matrix of fused
  estimator constants (see :func:`repro.core.estimator.build_code_consts`),
  stored constants-major so each constant's slice over a cluster is
  contiguous;
* ``slots`` — the searcher slot id of every arena row;
* a CSR-style region table (``starts`` / ``sizes`` / ``caps``) mapping each
  cluster to its contiguous row range.

Probing a cluster therefore yields *views* — zero-copy contiguous slices of
``codes`` / ``bits`` / ``consts`` / ``slots`` — instead of per-object Python
iteration.  Row order inside a cluster region always equals the IVF bucket's
id order (ascending slot id), which is exactly the row order the per-cluster
quantizers used to store, so estimates read from the arena are bit-identical
to the pre-arena layout.

The arena is maintained incrementally across the index lifecycle: cluster
regions carry geometric capacity slack, so :meth:`CodeArena.append` writes
in place and only rebuilds the arena (amortized O(1) per appended row) when
a region overflows; :meth:`CodeArena.compact` drops tombstoned rows and
renumbers the surviving slots in one pass.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import N_CONSTS
from repro.core.lut import SEGMENT_BITS, split_into_segments
from repro.exceptions import DimensionMismatchError, InvalidParameterError

#: Extra capacity factor applied to a cluster region when it overflows.
_GROWTH_FACTOR = 2.0


class CodeArena:
    """Contiguous cluster-grouped storage of packed codes + fused constants.

    Parameters
    ----------
    n_clusters:
        Number of cluster regions.
    code_length:
        Code length in bits (the ``bits`` matrix has this many columns).
    n_words:
        Words per packed code (``ceil(code_length / 64)``).
    n_consts:
        Rows of the fused estimator-constants matrix — ``N_CONSTS`` for
        squared-L2 serving (the default) or
        :data:`repro.core.estimator.N_CONSTS_SIM` when the searcher serves
        a similarity metric (the extra rows carry the
        centroid-decomposition terms).  Multi-bit arenas carry one extra
        trailing row (the per-code rescale factor).
    bits_per_dim:
        Code width ``B``.  ``1`` (default) is the binary layout; for
        ``B > 1`` the ``codes`` matrix holds ``B`` plane-major packed
        bit-planes per row (``n_words`` is ``B`` times the base word
        count), the ``bits`` matrix holds per-dimension *levels* in
        ``[0, 2^B - 1]`` instead of 0/1, and the LUT ``segs`` matrix is
        empty (fast-scan tables are binary-only).
    """

    __slots__ = (
        "codes",
        "bits",
        "segs",
        "consts",
        "slots",
        "starts",
        "sizes",
        "caps",
        "code_length",
        "n_words",
        "n_consts",
        "bits_per_dim",
    )

    def __init__(
        self,
        n_clusters: int,
        code_length: int,
        n_words: int,
        n_consts: int = N_CONSTS,
        bits_per_dim: int = 1,
    ) -> None:
        if n_clusters <= 0:
            raise InvalidParameterError("n_clusters must be positive")
        if n_consts < N_CONSTS:
            raise InvalidParameterError(
                f"n_consts must be at least {N_CONSTS}"
            )
        if not 1 <= int(bits_per_dim) <= 8:
            raise InvalidParameterError(
                "bits_per_dim must lie in [1, 8]"
            )
        self.code_length = int(code_length)
        self.n_words = int(n_words)
        self.n_consts = int(n_consts)
        self.bits_per_dim = int(bits_per_dim)
        self.codes = np.empty((0, self.n_words), dtype=np.uint64)
        self.bits = np.empty((0, self.code_length), dtype=np.uint8)
        self.segs = np.empty(
            (0, self._segs_cols()), dtype=np.uint8
        )
        self.consts = np.empty((self.n_consts, 0), dtype=np.float64)
        self.slots = np.empty(0, dtype=np.int64)
        self.starts = np.zeros(n_clusters, dtype=np.int64)
        self.sizes = np.zeros(n_clusters, dtype=np.int64)
        self.caps = np.zeros(n_clusters, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def _segs_cols(self) -> int:
        """Columns of the LUT segment matrix (0 for multi-bit arenas)."""
        if self.bits_per_dim > 1:
            return 0
        return self.code_length // SEGMENT_BITS

    @property
    def n_clusters(self) -> int:
        """Number of cluster regions."""
        return int(self.starts.shape[0])

    @property
    def n_rows(self) -> int:
        """Number of stored codes (live regions, excluding slack)."""
        return int(self.sizes.sum())

    def memory_bytes(self) -> int:
        """Approximate arena footprint (codes + bits + constants + ids)."""
        return int(
            self.codes.nbytes
            + self.bits.nbytes
            + self.segs.nbytes
            + self.consts.nbytes
            + self.slots.nbytes
        )

    def cluster_range(self, cid: int) -> tuple[int, int]:
        """``(start, end)`` row range of cluster ``cid``'s live rows."""
        start = int(self.starts[cid])
        return start, start + int(self.sizes[cid])

    def cluster_codes(self, cid: int) -> np.ndarray:
        """Packed codes of cluster ``cid`` (a contiguous view)."""
        start, end = self.cluster_range(cid)
        return self.codes[start:end]

    def cluster_bits(self, cid: int) -> np.ndarray:
        """Unpacked 0/1 codes of cluster ``cid`` (a contiguous view)."""
        start, end = self.cluster_range(cid)
        return self.bits[start:end]

    def cluster_segments(self, cid: int) -> np.ndarray:
        """4-bit segment ids of cluster ``cid`` (a contiguous view)."""
        start, end = self.cluster_range(cid)
        return self.segs[start:end]

    def cluster_consts(self, cid: int) -> np.ndarray:
        """Fused constants of cluster ``cid``, shape ``(N_CONSTS, size)``."""
        start, end = self.cluster_range(cid)
        return self.consts[:, start:end]

    def cluster_slots(self, cid: int) -> np.ndarray:
        """Searcher slot ids of cluster ``cid``'s rows (a view)."""
        start, end = self.cluster_range(cid)
        return self.slots[start:end]

    # ------------------------------------------------------------------ #
    # Construction and mutation
    # ------------------------------------------------------------------ #

    @classmethod
    def from_blocks(
        cls,
        n_clusters: int,
        code_length: int,
        n_words: int,
        blocks: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
        n_consts: int = N_CONSTS,
        bits_per_dim: int = 1,
    ) -> "CodeArena":
        """Build an arena from per-cluster ``(codes, bits, consts, slots)``.

        Used at fit and load time; regions are laid out tightly (no slack —
        slack appears on the first overflowing append).
        """
        arena = cls(n_clusters, code_length, n_words, n_consts, bits_per_dim)
        sizes = np.zeros(n_clusters, dtype=np.int64)
        for cid, (codes, _, _, _) in blocks.items():
            sizes[cid] = codes.shape[0]
        arena._allocate(sizes, sizes)
        for cid, (codes, bits, consts, slots) in blocks.items():
            arena._write_block(cid, 0, codes, bits, consts, slots)
            arena.sizes[cid] = codes.shape[0]
        return arena

    @classmethod
    def from_sections(
        cls,
        code_length: int,
        n_words: int,
        n_consts: int,
        *,
        codes: np.ndarray,
        bits: np.ndarray,
        segs: np.ndarray,
        consts: np.ndarray,
        slots: np.ndarray,
        sizes: np.ndarray,
        bits_per_dim: int = 1,
    ) -> "CodeArena":
        """Adopt pre-laid-out tight backing arrays (the format-v6 layout).

        The arrays must already be in cluster-grouped row order with no
        capacity slack: ``sizes[cid]`` rows per cluster, concatenated in
        cluster order (exactly what :meth:`dump_tight` produces).  They are
        adopted *as-is* — read-only ``np.memmap`` views included — which is
        what makes a memmapped load zero-copy.  The arena never writes into
        adopted arrays: with ``caps == sizes`` there is no slack, so the
        first :meth:`append` or :meth:`compact` reallocates fresh in-memory
        arrays and thereby materializes the mutated arena.
        """
        sizes = np.asarray(sizes, dtype=np.int64).reshape(-1)
        if sizes.shape[0] == 0:
            raise InvalidParameterError("n_clusters must be positive")
        if sizes.min(initial=0) < 0:
            raise InvalidParameterError("cluster sizes must be non-negative")
        arena = cls(sizes.shape[0], code_length, n_words, n_consts, bits_per_dim)
        total = int(sizes.sum())
        expected = {
            "codes": (total, arena.n_words),
            "bits": (total, arena.code_length),
            "segs": (total, arena._segs_cols()),
            "consts": (arena.n_consts, total),
            "slots": (total,),
        }
        arrays = {
            "codes": codes,
            "bits": bits,
            "segs": segs,
            "consts": consts,
            "slots": slots,
        }
        for name, array in arrays.items():
            if tuple(array.shape) != expected[name]:
                raise DimensionMismatchError(
                    f"arena section {name!r} has shape {tuple(array.shape)}, "
                    f"expected {expected[name]}"
                )
        arena.codes = codes
        arena.bits = bits
        arena.segs = segs
        arena.consts = consts
        arena.slots = slots
        arena.sizes = sizes.copy()
        arena.caps = sizes.copy()
        arena.starts = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(sizes)[:-1]]
        )
        return arena

    def dump_tight(self) -> dict[str, np.ndarray]:
        """Slack-free copies of the backing arrays, in cluster-grouped order.

        Returns ``codes`` / ``bits`` / ``segs`` / ``consts`` / ``slots``
        plus the per-cluster ``sizes`` — exactly the layout
        :meth:`from_sections` adopts, so a dump → load round trip
        reproduces the arena's live rows bit-identically (capacity slack is
        the only thing dropped).
        """
        parts = [
            np.arange(start, start + size, dtype=np.int64)
            for start, size in zip(self.starts.tolist(), self.sizes.tolist())
            if size
        ]
        rows = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        return {
            "codes": np.ascontiguousarray(self.codes[rows]),
            "bits": np.ascontiguousarray(self.bits[rows]),
            "segs": np.ascontiguousarray(self.segs[rows]),
            "consts": np.ascontiguousarray(self.consts[:, rows]),
            "slots": np.ascontiguousarray(self.slots[rows]),
            "sizes": self.sizes.copy(),
        }

    def _allocate(self, sizes: np.ndarray, caps: np.ndarray) -> None:
        """(Re)allocate the backing arrays for the given region capacities."""
        total = int(caps.sum())
        self.codes = np.zeros((total, self.n_words), dtype=np.uint64)
        self.bits = np.zeros((total, self.code_length), dtype=np.uint8)
        self.segs = np.zeros(
            (total, self._segs_cols()), dtype=np.uint8
        )
        self.consts = np.zeros((self.n_consts, total), dtype=np.float64)
        self.slots = np.full(total, -1, dtype=np.int64)
        self.caps = caps.astype(np.int64, copy=True)
        self.starts = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(self.caps)[:-1]]
        )
        self.sizes = sizes.astype(np.int64, copy=True)

    def _write_block(self, cid, offset, codes, bits, consts, slots, segs=None) -> None:
        pos = int(self.starts[cid]) + int(offset)
        end = pos + codes.shape[0]
        self.codes[pos:end] = codes
        self.bits[pos:end] = bits
        # Segment ids are derived from the unpacked bits unless the caller
        # already holds them (rebuild/compact copy the existing rows).
        # Multi-bit rows carry levels, not 0/1 bits, and have no LUT
        # segments at all.
        if self.bits_per_dim > 1:
            pass
        elif segs is None:
            self.segs[pos:end] = split_into_segments(bits)
        else:
            self.segs[pos:end] = segs
        self.consts[:, pos:end] = consts
        self.slots[pos:end] = slots

    def append(
        self,
        cid: int,
        codes: np.ndarray,
        bits: np.ndarray,
        consts: np.ndarray,
        slots: np.ndarray,
    ) -> None:
        """Append encoded rows to cluster ``cid``'s region.

        Fits into the region's capacity slack when possible (pure in-place
        writes); otherwise the arena is rebuilt once with geometrically
        grown capacity for the overflowing cluster, keeping a long sequence
        of inserts amortized O(1) copies per row.
        """
        n_new = codes.shape[0]
        if n_new == 0:
            return
        if codes.shape[1] != self.n_words or bits.shape[1] != self.code_length:
            raise DimensionMismatchError(
                "appended codes do not match the arena's code length"
            )
        size = int(self.sizes[cid])
        if size + n_new > int(self.caps[cid]):
            new_caps = self.caps.copy()
            new_caps[cid] = max(
                size + n_new, int(_GROWTH_FACTOR * (size + n_new)), 8
            )
            self._rebuild(new_caps)
        self._write_block(cid, size, codes, bits, consts, slots)
        self.sizes[cid] = size + n_new

    def _rebuild(self, new_caps: np.ndarray) -> None:
        """Re-lay-out every region with the given capacities (data preserved)."""
        old_codes, old_bits = self.codes, self.bits
        old_segs = self.segs
        old_consts, old_slots = self.consts, self.slots
        old_starts, sizes = self.starts.copy(), self.sizes.copy()
        self._allocate(sizes, new_caps)
        for cid in range(self.n_clusters):
            size = int(sizes[cid])
            if size == 0:
                continue
            src = slice(int(old_starts[cid]), int(old_starts[cid]) + size)
            self._write_block(
                cid,
                0,
                old_codes[src],
                old_bits[src],
                old_consts[:, src],
                old_slots[src],
                segs=old_segs[src],
            )

    def compact(self, keep_slot: np.ndarray) -> None:
        """Drop rows whose slot is marked dead and renumber surviving slots.

        ``keep_slot`` is a boolean mask over *searcher slots* (``True`` =
        live).  Surviving rows keep their relative order inside each cluster
        region, and their slot ids are remapped to the slot's position among
        the survivors — the same renumbering the flat and IVF indexes apply
        during tombstone compaction.
        """
        mask = np.asarray(keep_slot, dtype=bool).reshape(-1)
        remap = np.cumsum(mask, dtype=np.int64) - 1
        old_codes, old_bits = self.codes, self.bits
        old_segs = self.segs
        old_consts, old_slots = self.consts, self.slots
        old_starts, old_sizes = self.starts.copy(), self.sizes.copy()

        new_sizes = np.zeros_like(old_sizes)
        kept_rows: list[tuple[int, np.ndarray]] = []
        for cid in range(self.n_clusters):
            size = int(old_sizes[cid])
            if size == 0:
                continue
            start = int(old_starts[cid])
            rows = slice(start, start + size)
            row_mask = mask[old_slots[rows]]
            kept = np.flatnonzero(row_mask) + start
            new_sizes[cid] = kept.shape[0]
            if kept.shape[0]:
                kept_rows.append((cid, kept))

        self._allocate(new_sizes, new_sizes)
        for cid, kept in kept_rows:
            self._write_block(
                cid,
                0,
                old_codes[kept],
                old_bits[kept],
                old_consts[:, kept],
                remap[old_slots[kept]],
                segs=old_segs[kept],
            )


__all__ = ["CodeArena"]
