"""Exact brute-force index.

Used for ground truth, for exact re-ranking of candidates, and as the
reference point of every accuracy metric.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import (
    DimensionMismatchError,
    EmptyDatasetError,
    InvalidParameterError,
)
from repro.substrates.linalg import as_float_matrix, squared_distances_to_point


class FlatIndex:
    """Stores raw vectors and answers exact k-NN queries by brute force."""

    def __init__(self, data: np.ndarray) -> None:
        mat = as_float_matrix(data, "data")
        if mat.shape[0] == 0:
            raise EmptyDatasetError("cannot build a FlatIndex over an empty dataset")
        self._data = mat

    @property
    def data(self) -> np.ndarray:
        """The stored raw vectors."""
        return self._data

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return int(self._data.shape[1])

    def __len__(self) -> int:
        return int(self._data.shape[0])

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self.dim:
            raise DimensionMismatchError(
                f"query has dimension {vec.shape[0]}, index expects {self.dim}"
            )
        return vec

    def distances(self, query: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray:
        """Exact squared distances from ``query`` to all (or selected) vectors."""
        vec = self._check_query(query)
        if ids is None:
            return squared_distances_to_point(self._data, vec)
        idx = np.asarray(ids, dtype=np.intp)
        return squared_distances_to_point(self._data[idx], vec)

    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact ``k`` nearest neighbours: ``(ids, squared_distances)``."""
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        vec = self._check_query(query)
        dists = squared_distances_to_point(self._data, vec)
        k = min(k, dists.shape[0])
        part = np.argpartition(dists, kth=k - 1)[:k]
        order = np.argsort(dists[part], kind="stable")
        ids = part[order]
        return ids.astype(np.int64), dists[ids]

    def rerank(
        self, query: np.ndarray, candidate_ids: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact re-ranking of a candidate list: best ``k`` by true distance."""
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        idx = np.asarray(candidate_ids, dtype=np.intp).ravel()
        if idx.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        vec = self._check_query(query)
        dists = squared_distances_to_point(self._data[idx], vec)
        k = min(k, idx.size)
        order = np.argsort(dists, kind="stable")[:k]
        return idx[order].astype(np.int64), dists[order]


__all__ = ["FlatIndex"]
