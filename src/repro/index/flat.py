"""Exact brute-force index.

Used for ground truth, for exact re-ranking of candidates, and as the
reference point of every accuracy metric.  Batch variants
(:meth:`FlatIndex.search_batch`, :meth:`FlatIndex.rerank_batch`) answer a
whole query matrix per call; top-k selection uses argpartition-based
partial sorts rather than full stable sorts on the hot path.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import (
    DimensionMismatchError,
    EmptyDatasetError,
    InvalidParameterError,
)
from repro.substrates.linalg import (
    as_float_matrix,
    squared_distances_to_point,
    squared_distances_to_points,
    stable_topk_indices,
    topk_indices,
)


class FlatIndex:
    """Stores raw vectors and answers exact k-NN queries by brute force."""

    def __init__(self, data: np.ndarray) -> None:
        mat = as_float_matrix(data, "data")
        if mat.shape[0] == 0:
            raise EmptyDatasetError("cannot build a FlatIndex over an empty dataset")
        self._data = mat

    @property
    def data(self) -> np.ndarray:
        """The stored raw vectors."""
        return self._data

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return int(self._data.shape[1])

    def __len__(self) -> int:
        return int(self._data.shape[0])

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self.dim:
            raise DimensionMismatchError(
                f"query has dimension {vec.shape[0]}, index expects {self.dim}"
            )
        return vec

    def distances(self, query: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray:
        """Exact squared distances from ``query`` to all (or selected) vectors."""
        vec = self._check_query(query)
        if ids is None:
            return squared_distances_to_point(self._data, vec)
        idx = np.asarray(ids, dtype=np.intp)
        return squared_distances_to_point(self._data[idx], vec)

    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact ``k`` nearest neighbours: ``(ids, squared_distances)``."""
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        vec = self._check_query(query)
        dists = squared_distances_to_point(self._data, vec)
        k = min(k, dists.shape[0])
        ids = topk_indices(dists, k)
        return ids.astype(np.int64), dists[ids]

    def rerank(
        self, query: np.ndarray, candidate_ids: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact re-ranking of a candidate list: best ``k`` by true distance."""
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        idx = np.asarray(candidate_ids, dtype=np.intp).ravel()
        if idx.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        vec = self._check_query(query)
        dists = squared_distances_to_point(self._data[idx], vec)
        k = min(k, idx.size)
        order = stable_topk_indices(dists, k)
        return idx[order].astype(np.int64), dists[order]

    def search_batch(
        self, queries: np.ndarray, k: int
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Exact k-NN for every row of ``queries``: ``(ids_list, dists_list)``.

        The distance matrix is computed once for the whole batch; per-query
        top-k selection uses the argpartition-based partial sort.
        """
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        mat = as_float_matrix(queries, "queries")
        if mat.shape[0] and mat.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"queries have dimension {mat.shape[1]}, index expects {self.dim}"
            )
        k = min(k, self._data.shape[0])
        dists = squared_distances_to_points(self._data, mat)
        ids_out: list[np.ndarray] = []
        dists_out: list[np.ndarray] = []
        for i in range(mat.shape[0]):
            ids = topk_indices(dists[i], k)
            ids_out.append(ids.astype(np.int64))
            dists_out.append(dists[i][ids])
        return ids_out, dists_out

    def rerank_batch(
        self,
        queries: np.ndarray,
        candidate_ids: list[np.ndarray] | tuple[np.ndarray, ...],
        k: int,
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Exact re-ranking of one candidate list per query row."""
        mat = as_float_matrix(queries, "queries")
        if mat.shape[0] != len(candidate_ids):
            raise DimensionMismatchError(
                "need exactly one candidate list per query"
            )
        ids_out: list[np.ndarray] = []
        dists_out: list[np.ndarray] = []
        for i in range(mat.shape[0]):
            ids, dists = self.rerank(mat[i], candidate_ids[i], k)
            ids_out.append(ids)
            dists_out.append(dists)
        return ids_out, dists_out


__all__ = ["FlatIndex"]
