"""Exact brute-force index.

Used for ground truth, for exact re-ranking of candidates, and as the
reference point of every accuracy metric.  Batch variants
(:meth:`FlatIndex.search_batch`, :meth:`FlatIndex.rerank_batch`) answer a
whole query matrix per call; top-k selection uses argpartition-based
partial sorts rather than full stable sorts on the hot path.

The index is *mutable*: :meth:`FlatIndex.add` appends rows (amortized O(1)
via a geometrically grown buffer) and :meth:`FlatIndex.keep_rows` drops rows
during tombstone compaction.  Both are used by the index lifecycle of
:class:`repro.index.searcher.IVFQuantizedSearcher`; note that the
:attr:`FlatIndex.data` property returns a *view* into the growable buffer,
so callers should not hold on to it across mutations.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import (
    DimensionMismatchError,
    EmptyDatasetError,
    InvalidParameterError,
)
from repro.substrates.linalg import (
    as_float_matrix,
    squared_distances_to_point,
    squared_distances_to_points,
    stable_topk_indices,
    topk_indices,
)


class FlatIndex:
    """Stores raw vectors and answers exact k-NN queries by brute force.

    Parameters
    ----------
    data:
        Initial raw vectors, shape ``(n_vectors, dim)``.
    allow_empty:
        Permit constructing the index with zero rows (used when reloading a
        fully-compacted index from disk); by default an empty dataset is
        rejected.
    """

    def __init__(self, data: np.ndarray, *, allow_empty: bool = False) -> None:
        mat = as_float_matrix(data, "data")
        if mat.shape[0] == 0 and not allow_empty:
            raise EmptyDatasetError("cannot build a FlatIndex over an empty dataset")
        self._buffer = mat
        self._size = int(mat.shape[0])

    @property
    def data(self) -> np.ndarray:
        """The stored raw vectors (a view; invalidated by :meth:`add`)."""
        return self._buffer[: self._size]

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return int(self._buffer.shape[1])

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add(self, vectors: np.ndarray) -> np.ndarray:
        """Append rows and return their assigned row ids (positions).

        The backing buffer grows geometrically, so a long sequence of small
        inserts costs amortized O(1) copies per row.
        """
        mat = as_float_matrix(vectors, "vectors")
        if mat.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        if mat.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"vectors have dimension {mat.shape[1]}, index expects {self.dim}"
            )
        needed = self._size + mat.shape[0]
        if needed > self._buffer.shape[0]:
            capacity = max(needed, 2 * self._buffer.shape[0], 8)
            grown = np.empty((capacity, self.dim), dtype=np.float64)
            grown[: self._size] = self._buffer[: self._size]
            self._buffer = grown
        self._buffer[self._size : needed] = mat
        slots = np.arange(self._size, needed, dtype=np.int64)
        self._size = needed
        return slots

    def keep_rows(self, keep: np.ndarray) -> "FlatIndex":
        """Drop all rows where ``keep`` is ``False`` (order-preserving)."""
        mask = np.asarray(keep, dtype=bool).reshape(-1)
        if mask.shape[0] != self._size:
            raise DimensionMismatchError(
                f"keep mask has length {mask.shape[0]}, index has {self._size} rows"
            )
        if mask.all():
            return self
        # Boolean-mask indexing already returns a fresh contiguous array.
        self._buffer = self._buffer[: self._size][mask]
        self._size = int(self._buffer.shape[0])
        return self

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self.dim:
            raise DimensionMismatchError(
                f"query has dimension {vec.shape[0]}, index expects {self.dim}"
            )
        return vec

    def distances(self, query: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray:
        """Exact squared distances from ``query`` to all (or selected) vectors."""
        vec = self._check_query(query)
        if ids is None:
            return squared_distances_to_point(self.data, vec)
        idx = np.asarray(ids, dtype=np.intp)
        return squared_distances_to_point(self.data[idx], vec)

    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact ``k`` nearest neighbours: ``(ids, squared_distances)``."""
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        vec = self._check_query(query)
        dists = squared_distances_to_point(self.data, vec)
        k = min(k, dists.shape[0])
        ids = topk_indices(dists, k)
        return ids.astype(np.int64), dists[ids]

    def rerank(
        self, query: np.ndarray, candidate_ids: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact re-ranking of a candidate list: best ``k`` by true distance."""
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        idx = np.asarray(candidate_ids, dtype=np.intp).ravel()
        if idx.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        vec = self._check_query(query)
        dists = squared_distances_to_point(self.data[idx], vec)
        k = min(k, idx.size)
        order = stable_topk_indices(dists, k)
        return idx[order].astype(np.int64), dists[order]

    def search_batch(
        self, queries: np.ndarray, k: int
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Exact k-NN for every row of ``queries``: ``(ids_list, dists_list)``.

        The distance matrix is computed once for the whole batch; per-query
        top-k selection uses the argpartition-based partial sort.
        """
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        mat = as_float_matrix(queries, "queries")
        if mat.shape[0] and mat.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"queries have dimension {mat.shape[1]}, index expects {self.dim}"
            )
        k = min(k, self._size)
        dists = squared_distances_to_points(self.data, mat)
        ids_out: list[np.ndarray] = []
        dists_out: list[np.ndarray] = []
        for i in range(mat.shape[0]):
            ids = topk_indices(dists[i], k)
            ids_out.append(ids.astype(np.int64))
            dists_out.append(dists[i][ids])
        return ids_out, dists_out

    def rerank_batch(
        self,
        queries: np.ndarray,
        candidate_ids: list[np.ndarray] | tuple[np.ndarray, ...],
        k: int,
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Exact re-ranking of one candidate list per query row."""
        mat = as_float_matrix(queries, "queries")
        if mat.shape[0] != len(candidate_ids):
            raise DimensionMismatchError(
                "need exactly one candidate list per query"
            )
        ids_out: list[np.ndarray] = []
        dists_out: list[np.ndarray] = []
        for i in range(mat.shape[0]):
            ids, dists = self.rerank(mat[i], candidate_ids[i], k)
            ids_out.append(ids)
            dists_out.append(dists)
        return ids_out, dists_out


__all__ = ["FlatIndex"]
