"""Shared substrates used by quantizers and indexes.

This sub-package hosts infrastructure the paper's systems depend on but that
is not itself a contribution of the paper: random-number handling, a KMeans
implementation (used by IVF and by the PQ/OPQ/LSQ baselines), and small
linear-algebra helpers.
"""

from repro.substrates.kmeans import KMeans, KMeansResult, kmeans_fit
from repro.substrates.linalg import (
    normalize_rows,
    pairwise_squared_distances,
    squared_norms,
)
from repro.substrates.rng import ensure_rng, spawn_rngs

__all__ = [
    "KMeans",
    "KMeansResult",
    "kmeans_fit",
    "ensure_rng",
    "spawn_rngs",
    "normalize_rows",
    "pairwise_squared_distances",
    "squared_norms",
]
