"""A self-contained KMeans implementation.

KMeans is a substrate used in three places in the reproduction:

* the coarse quantizer of the IVF index (Section 4 of the paper),
* the sub-codebook training of Product Quantization and OPQ,
* the learned-codebook ablation of Appendix F.1.

The implementation uses k-means++ seeding, Lloyd iterations with empty-cluster
re-seeding, and runs entirely on NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import EmptyDatasetError, InvalidParameterError, NotFittedError
from repro.substrates.linalg import as_float_matrix, pairwise_squared_distances
from repro.substrates.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class KMeansResult:
    """The output of a KMeans run.

    Attributes
    ----------
    centroids:
        Array of shape ``(n_clusters, dim)``.
    assignments:
        Cluster id per training point, shape ``(n_points,)``.
    inertia:
        Sum of squared distances from points to their assigned centroids.
    n_iter:
        Number of Lloyd iterations performed.
    """

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    n_iter: int


def _kmeans_plus_plus(
    data: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """Choose initial centroids with the k-means++ strategy."""
    n_points = data.shape[0]
    centroids = np.empty((n_clusters, data.shape[1]), dtype=np.float64)
    first = int(rng.integers(n_points))
    centroids[0] = data[first]
    closest = pairwise_squared_distances(data, centroids[:1]).ravel()
    for i in range(1, n_clusters):
        total = float(closest.sum())
        if total <= 0.0:
            # All remaining points coincide with chosen centroids; pick randomly.
            idx = int(rng.integers(n_points))
        else:
            probs = closest / total
            idx = int(rng.choice(n_points, p=probs))
        centroids[i] = data[idx]
        new_dist = pairwise_squared_distances(data, centroids[i : i + 1]).ravel()
        np.minimum(closest, new_dist, out=closest)
    return centroids


#: Above this many ``(point, centroid)`` pairs the E-step streams the
#: distance matrix in row chunks instead of materializing it whole (a
#: 131072x4096 float64 block plus the expansion's temporaries peaks over
#: 12 GiB).  The threshold sits above every pinned workload (the 100k
#: benchmark baseline is ~1.3e8 pairs), so chunking never perturbs an
#: archived result stream: per-row GEMM rounding may differ between
#: operand shapes, and results below the threshold must stay bit-stable.
_ASSIGN_FULL_ENTRIES = 2**28

#: Pair budget per chunk once chunking triggers (~0.5 GiB of float64).
_ASSIGN_CHUNK_ENTRIES = 2**26


def _assign(data: np.ndarray, centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Assign each point to its nearest centroid.

    Returns ``(assignments, squared_distance_to_assigned_centroid)``.
    """
    n_points = data.shape[0]
    n_clusters = centroids.shape[0]
    if n_points * n_clusters <= _ASSIGN_FULL_ENTRIES:
        dists = pairwise_squared_distances(data, centroids)
        assignments = np.argmin(dists, axis=1)
        best = dists[np.arange(n_points), assignments]
        return assignments, best
    assignments = np.empty(n_points, dtype=np.int64)
    best = np.empty(n_points, dtype=np.float64)
    chunk = max(1, _ASSIGN_CHUNK_ENTRIES // n_clusters)
    for lo in range(0, n_points, chunk):
        hi = min(lo + chunk, n_points)
        dists = pairwise_squared_distances(data[lo:hi], centroids)
        assignments[lo:hi] = np.argmin(dists, axis=1)
        best[lo:hi] = dists[np.arange(hi - lo), assignments[lo:hi]]
    return assignments, best


def kmeans_fit(
    data: np.ndarray,
    n_clusters: int,
    *,
    max_iter: int = 25,
    tol: float = 1e-6,
    rng: RngLike = None,
) -> KMeansResult:
    """Run KMeans on ``data`` and return the fitted centroids.

    Parameters
    ----------
    data:
        Training points, shape ``(n_points, dim)``.
    n_clusters:
        Number of centroids; must be between 1 and ``n_points``.
    max_iter:
        Maximum number of Lloyd iterations.
    tol:
        Relative inertia improvement below which iteration stops.
    rng:
        Seed or generator controlling initialization and re-seeding.
    """
    points = as_float_matrix(data, "data")
    if points.shape[0] == 0:
        raise EmptyDatasetError("cannot run KMeans on an empty dataset")
    if n_clusters <= 0:
        raise InvalidParameterError("n_clusters must be positive")
    if n_clusters > points.shape[0]:
        raise InvalidParameterError(
            f"n_clusters={n_clusters} exceeds number of points {points.shape[0]}"
        )
    if max_iter < 1:
        raise InvalidParameterError("max_iter must be at least 1")

    generator = ensure_rng(rng)
    centroids = _kmeans_plus_plus(points, n_clusters, generator)
    assignments, best = _assign(points, centroids)
    inertia = float(best.sum())
    n_iter = 0

    for n_iter in range(1, max_iter + 1):
        # Update step: recompute centroids as cluster means.
        for cluster_id in range(n_clusters):
            members = points[assignments == cluster_id]
            if members.shape[0] == 0:
                # Re-seed empty clusters at the point farthest from its centroid.
                farthest = int(np.argmax(best))
                centroids[cluster_id] = points[farthest]
                best[farthest] = 0.0
            else:
                centroids[cluster_id] = members.mean(axis=0)

        assignments, best = _assign(points, centroids)
        new_inertia = float(best.sum())
        if inertia > 0.0 and (inertia - new_inertia) <= tol * inertia:
            inertia = new_inertia
            break
        inertia = new_inertia

    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        inertia=inertia,
        n_iter=n_iter,
    )


class KMeans:
    """Object-oriented wrapper around :func:`kmeans_fit`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.substrates import KMeans
    >>> rng = np.random.default_rng(0)
    >>> data = rng.standard_normal((200, 8))
    >>> model = KMeans(n_clusters=4, rng=0).fit(data)
    >>> model.centroids.shape
    (4, 8)
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        max_iter: int = 25,
        tol: float = 1e-6,
        rng: RngLike = None,
    ) -> None:
        if n_clusters <= 0:
            raise InvalidParameterError("n_clusters must be positive")
        self.n_clusters = int(n_clusters)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self._rng = ensure_rng(rng)
        self._result: KMeansResult | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._result is not None

    @property
    def centroids(self) -> np.ndarray:
        """Fitted centroids of shape ``(n_clusters, dim)``."""
        return self._require_result().centroids

    @property
    def inertia(self) -> float:
        """Final sum of squared distances to assigned centroids."""
        return self._require_result().inertia

    @property
    def labels(self) -> np.ndarray:
        """Cluster assignment of each training point."""
        return self._require_result().assignments

    def _require_result(self) -> KMeansResult:
        if self._result is None:
            raise NotFittedError("KMeans must be fitted before use")
        return self._result

    def fit(self, data: np.ndarray) -> "KMeans":
        """Fit the model to ``data`` and return ``self``."""
        self._result = kmeans_fit(
            data,
            self.n_clusters,
            max_iter=self.max_iter,
            tol=self.tol,
            rng=self._rng,
        )
        return self

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Return the id of the nearest centroid for each row of ``data``."""
        result = self._require_result()
        points = as_float_matrix(data, "data")
        assignments, _ = _assign(points, result.centroids)
        return assignments

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Return squared distances from each row of ``data`` to every centroid."""
        result = self._require_result()
        points = as_float_matrix(data, "data")
        return pairwise_squared_distances(points, result.centroids)


__all__ = ["KMeans", "KMeansResult", "kmeans_fit"]
