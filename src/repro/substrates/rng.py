"""Random-number-generator utilities.

Every randomized component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` and routes it through
:func:`ensure_rng`.  Passing generators explicitly keeps the experiments
reproducible and avoids any hidden global state.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.exceptions import InvalidParameterError

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator
        (returned unchanged).

    Returns
    -------
    numpy.random.Generator
        A generator usable by all randomized components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot build a Generator from {type(seed).__name__!s}")


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    This is the preferred way to give independent randomness to several
    components (e.g. the rotation matrix and the query quantizer) while
    keeping a single user-facing seed.
    """
    if count < 0:
        raise InvalidParameterError("count must be non-negative")
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a single integer seed from ``rng`` suitable for child generators."""
    return int(rng.integers(0, 2**63 - 1, dtype=np.int64))


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` lies in ``[0, 1]`` and return it as ``float``."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise InvalidParameterError(f"{name} must lie in [0, 1], got {value}")
    return value


def sample_unit_vector(dim: int, rng: RngLike = None) -> np.ndarray:
    """Sample a vector uniformly from the unit sphere in ``dim`` dimensions."""
    if dim <= 0:
        raise InvalidParameterError("dim must be positive")
    generator = ensure_rng(rng)
    vec = generator.standard_normal(dim)
    norm = np.linalg.norm(vec)
    while norm == 0.0:  # pragma: no cover - probability zero, defensive only
        vec = generator.standard_normal(dim)
        norm = np.linalg.norm(vec)
    return vec / norm


def sample_unit_vectors(count: int, dim: int, rng: RngLike = None) -> np.ndarray:
    """Sample ``count`` vectors independently and uniformly from the unit sphere."""
    if count < 0:
        raise InvalidParameterError("count must be non-negative")
    generator = ensure_rng(rng)
    mat = generator.standard_normal((count, dim))
    norms = np.linalg.norm(mat, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return mat / norms


__all__: Sequence[str] = (
    "RngLike",
    "ensure_rng",
    "spawn_rngs",
    "derive_seed",
    "check_probability",
    "sample_unit_vector",
    "sample_unit_vectors",
)
