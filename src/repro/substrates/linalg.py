"""Small linear-algebra helpers shared across the library.

These functions are deliberately simple NumPy routines; they centralize the
conventions (float64 accumulation, squared distances, safe normalization)
that the rest of the code relies on.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionMismatchError


def as_float_matrix(data: np.ndarray, name: str = "data") -> np.ndarray:
    """Validate and return ``data`` as a 2-D ``float64`` array.

    A 1-D vector is promoted to a single-row matrix.  Anything that is not
    one- or two-dimensional raises :class:`DimensionMismatchError`.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise DimensionMismatchError(
            f"{name} must be a 1-D vector or 2-D matrix, got ndim={arr.ndim}"
        )
    return arr


def squared_norms(matrix: np.ndarray) -> np.ndarray:
    """Row-wise squared Euclidean norms of ``matrix``."""
    mat = as_float_matrix(matrix, "matrix")
    return np.einsum("ij,ij->i", mat, mat)


def normalize_rows(
    matrix: np.ndarray, *, return_norms: bool = False
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Normalize each row of ``matrix`` to unit Euclidean norm.

    Zero rows are left as zeros (their norm is reported as 0).  When
    ``return_norms`` is true the original norms are returned alongside the
    normalized matrix.
    """
    mat = as_float_matrix(matrix, "matrix")
    norms = np.sqrt(np.einsum("ij,ij->i", mat, mat))
    safe = np.where(norms > 0.0, norms, 1.0)
    normalized = mat / safe[:, None]
    if return_norms:
        return normalized, norms
    return normalized


def pairwise_squared_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between the rows of ``a`` and of ``b``.

    Returns a matrix of shape ``(len(a), len(b))``.  Uses the expansion
    ``|x - y|^2 = |x|^2 + |y|^2 - 2<x, y>`` and clips tiny negative values
    introduced by floating-point cancellation.
    """
    a_mat = as_float_matrix(a, "a")
    b_mat = as_float_matrix(b, "b")
    if a_mat.shape[1] != b_mat.shape[1]:
        raise DimensionMismatchError(
            f"dimension mismatch: a has D={a_mat.shape[1]}, b has D={b_mat.shape[1]}"
        )
    a_sq = np.einsum("ij,ij->i", a_mat, a_mat)[:, None]
    b_sq = np.einsum("ij,ij->i", b_mat, b_mat)[None, :]
    cross = a_mat @ b_mat.T
    dists = a_sq + b_sq - 2.0 * cross
    np.maximum(dists, 0.0, out=dists)
    return dists


def squared_distances_to_point(matrix: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance from every row of ``matrix`` to ``point``."""
    mat = as_float_matrix(matrix, "matrix")
    vec = np.asarray(point, dtype=np.float64).reshape(-1)
    if mat.shape[1] != vec.shape[0]:
        raise DimensionMismatchError(
            f"dimension mismatch: matrix has D={mat.shape[1]}, point has D={vec.shape[0]}"
        )
    diff = mat - vec[None, :]
    return np.einsum("ij,ij->i", diff, diff)


def is_orthogonal(matrix: np.ndarray, *, atol: float = 1e-8) -> bool:
    """Return ``True`` if ``matrix`` is (numerically) orthogonal."""
    mat = np.asarray(matrix, dtype=np.float64)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        return False
    identity = np.eye(mat.shape[0])
    return bool(np.allclose(mat @ mat.T, identity, atol=atol))


def gram_schmidt(matrix: np.ndarray) -> np.ndarray:
    """Orthonormalize the rows of ``matrix`` with modified Gram-Schmidt.

    Provided mainly for tests and for mirroring the constructive argument in
    the paper's Appendix B; production code uses QR factorization instead.
    """
    mat = as_float_matrix(matrix, "matrix").copy()
    rows, _ = mat.shape
    for i in range(rows):
        for j in range(i):
            mat[i] -= np.dot(mat[i], mat[j]) * mat[j]
        norm = np.linalg.norm(mat[i])
        if norm <= 1e-15:
            raise ValueError("matrix rows are linearly dependent; cannot orthonormalize")
        mat[i] /= norm
    return mat


__all__ = [
    "as_float_matrix",
    "squared_norms",
    "normalize_rows",
    "pairwise_squared_distances",
    "squared_distances_to_point",
    "is_orthogonal",
    "gram_schmidt",
]
