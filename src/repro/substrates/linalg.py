"""Small linear-algebra helpers shared across the library.

These functions are deliberately simple NumPy routines; they centralize the
conventions (float64 accumulation, squared distances, safe normalization)
that the rest of the code relies on.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionMismatchError, InvalidParameterError


def as_float_matrix(data: np.ndarray, name: str = "data") -> np.ndarray:
    """Validate and return ``data`` as a 2-D ``float64`` array.

    A 1-D vector is promoted to a single-row matrix.  Anything that is not
    one- or two-dimensional raises :class:`DimensionMismatchError`.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise DimensionMismatchError(
            f"{name} must be a 1-D vector or 2-D matrix, got ndim={arr.ndim}"
        )
    return arr


def squared_norms(matrix: np.ndarray) -> np.ndarray:
    """Row-wise squared Euclidean norms of ``matrix``."""
    mat = as_float_matrix(matrix, "matrix")
    return np.einsum("ij,ij->i", mat, mat)


def normalize_rows(
    matrix: np.ndarray, *, return_norms: bool = False
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Normalize each row of ``matrix`` to unit Euclidean norm.

    Zero rows are left as zeros (their norm is reported as 0).  When
    ``return_norms`` is true the original norms are returned alongside the
    normalized matrix.
    """
    mat = as_float_matrix(matrix, "matrix")
    norms = np.sqrt(np.einsum("ij,ij->i", mat, mat))
    safe = np.where(norms > 0.0, norms, 1.0)
    normalized = mat / safe[:, None]
    if return_norms:
        return normalized, norms
    return normalized


def pairwise_squared_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between the rows of ``a`` and of ``b``.

    Returns a matrix of shape ``(len(a), len(b))``.  Uses the expansion
    ``|x - y|^2 = |x|^2 + |y|^2 - 2<x, y>`` and clips tiny negative values
    introduced by floating-point cancellation.
    """
    a_mat = as_float_matrix(a, "a")
    b_mat = as_float_matrix(b, "b")
    if a_mat.shape[1] != b_mat.shape[1]:
        raise DimensionMismatchError(
            f"dimension mismatch: a has D={a_mat.shape[1]}, b has D={b_mat.shape[1]}"
        )
    a_sq = np.einsum("ij,ij->i", a_mat, a_mat)[:, None]
    b_sq = np.einsum("ij,ij->i", b_mat, b_mat)[None, :]
    cross = a_mat @ b_mat.T
    dists = a_sq + b_sq - 2.0 * cross
    np.maximum(dists, 0.0, out=dists)
    return dists


def squared_distances_to_point(matrix: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance from every row of ``matrix`` to ``point``."""
    mat = as_float_matrix(matrix, "matrix")
    vec = np.asarray(point, dtype=np.float64).reshape(-1)
    if mat.shape[1] != vec.shape[0]:
        raise DimensionMismatchError(
            f"dimension mismatch: matrix has D={mat.shape[1]}, point has D={vec.shape[0]}"
        )
    diff = mat - vec[None, :]
    return np.einsum("ij,ij->i", diff, diff)


#: Cap on the float64 cells of the per-chunk difference tensor in
#: :func:`squared_distances_to_points` (about 256 MiB).
_DIST_BATCH_MAX_CELLS = 32_000_000


def squared_distances_to_points(matrix: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Squared distances from every row of ``matrix`` to every row of ``points``.

    Returns a matrix of shape ``(len(points), len(matrix))`` whose row ``i``
    is bit-identical to ``squared_distances_to_point(matrix, points[i])``
    (broadcasted difference + the same ``einsum`` reduction — unlike
    :func:`pairwise_squared_distances`, whose norm-expansion trick is faster
    but rounds differently).  The point axis is processed in chunks so the
    intermediate difference tensor stays bounded.
    """
    mat = as_float_matrix(matrix, "matrix")
    pts = as_float_matrix(points, "points")
    if pts.shape[0] and mat.shape[1] != pts.shape[1]:
        raise DimensionMismatchError(
            f"dimension mismatch: matrix has D={mat.shape[1]}, "
            f"points have D={pts.shape[1]}"
        )
    out = np.empty((pts.shape[0], mat.shape[0]), dtype=np.float64)
    chunk = max(1, _DIST_BATCH_MAX_CELLS // max(1, mat.shape[0] * mat.shape[1]))
    for start in range(0, pts.shape[0], chunk):
        block = pts[start : start + chunk]
        diff = mat[None, :, :] - block[:, None, :]
        out[start : start + chunk] = np.einsum("qij,qij->qi", diff, diff)
    return out


def topk_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest entries, in ascending value order.

    The classic argpartition + partial-sort idiom shared by the flat and IVF
    probing paths.  Unlike :func:`stable_topk_indices`, ties at the
    selection boundary are resolved by ``argpartition`` (deterministically
    for a given input, but not by index), which is the long-standing
    behavior of those call sites.  ``k`` must satisfy ``1 <= k <= len(values)``
    (callers clamp).
    """
    vals = np.asarray(values)
    part = np.argpartition(vals, kth=k - 1)[:k]
    order = np.argsort(vals[part], kind="stable")
    return part[order]


def stable_topk_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest entries, in stable ascending order.

    Returns exactly ``np.argsort(values, kind="stable")[:k]`` — ties are
    broken by ascending index — but avoids the full ``O(n log n)`` stable
    sort on the hot path: an ``O(n)`` ``argpartition`` narrows the
    selection, boundary ties are resolved explicitly in index order, and
    only the ``k`` survivors are sorted.
    """
    vals = np.asarray(values)
    if vals.ndim != 1:
        raise DimensionMismatchError("values must be one-dimensional")
    n = vals.shape[0]
    if k >= n:
        return np.argsort(vals, kind="stable")
    if k <= 0:
        return np.empty(0, dtype=np.intp)
    part = np.argpartition(vals, kth=k - 1)[:k]
    boundary = vals[part].max()
    strict = np.flatnonzero(vals < boundary)
    ties = np.flatnonzero(vals == boundary)[: k - strict.shape[0]]
    chosen = np.concatenate([strict, ties])
    if chosen.shape[0] < k:
        # NaN boundary (argpartition sorts NaN last): fall back to the
        # reference stable sort, which handles NaN placement consistently.
        return np.argsort(vals, kind="stable")[:k]
    order = np.argsort(vals[chosen], kind="stable")
    return chosen[order]


def is_orthogonal(matrix: np.ndarray, *, atol: float = 1e-8) -> bool:
    """Return ``True`` if ``matrix`` is (numerically) orthogonal."""
    mat = np.asarray(matrix, dtype=np.float64)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        return False
    identity = np.eye(mat.shape[0])
    return bool(np.allclose(mat @ mat.T, identity, atol=atol))


def gram_schmidt(matrix: np.ndarray) -> np.ndarray:
    """Orthonormalize the rows of ``matrix`` with modified Gram-Schmidt.

    Provided mainly for tests and for mirroring the constructive argument in
    the paper's Appendix B; production code uses QR factorization instead.
    """
    mat = as_float_matrix(matrix, "matrix").copy()
    rows, _ = mat.shape
    for i in range(rows):
        for j in range(i):
            mat[i] -= np.dot(mat[i], mat[j]) * mat[j]
        norm = np.linalg.norm(mat[i])
        if norm <= 1e-15:
            raise InvalidParameterError("matrix rows are linearly dependent; cannot orthonormalize")
        mat[i] /= norm
    return mat


__all__ = [
    "as_float_matrix",
    "squared_norms",
    "normalize_rows",
    "pairwise_squared_distances",
    "squared_distances_to_point",
    "squared_distances_to_points",
    "topk_indices",
    "stable_topk_indices",
    "is_orthogonal",
    "gram_schmidt",
]
