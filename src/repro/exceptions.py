"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError` so that callers can catch library-specific failures
without also swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class NotFittedError(ReproError):
    """Raised when a model is used before :meth:`fit` has been called."""


class DimensionMismatchError(ReproError):
    """Raised when an input array has an unexpected dimensionality."""


class InvalidParameterError(ReproError, ValueError):
    """Raised when a constructor or method receives an invalid parameter.

    Also derives from :class:`ValueError` so callers that predate the
    library-wide error surface (``except ValueError``) keep working; new
    code should catch :class:`ReproError` or this class directly.
    """


class EmptyDatasetError(ReproError):
    """Raised when an operation requires a non-empty dataset."""


class PersistenceError(ReproError):
    """Raised when a saved index cannot be read or written.

    Covers missing/corrupt/truncated archives, wrong magic headers and
    unsupported format versions.
    """


class ServingError(ReproError):
    """Raised for failures of the online serving front end.

    Covers misuse of a :class:`repro.serving.ServingEngine` (submitting to a
    closed engine, worker failures surfaced to waiting callers) — parameter
    validation stays :class:`InvalidParameterError`, and admission-control
    rejections raise the :class:`AdmissionRejectedError` subclass so callers
    can retry/shed load without catching genuine engine failures.
    """


class AdmissionRejectedError(ServingError):
    """Raised when the serving engine fast-fails a request at admission.

    The two rejection causes are a full request queue (bounded by the
    engine's ``max_queue_depth``) and a deadline that is already impossible
    to meet at submit time.  Rejection happens *before* the request consumes
    any search work, so callers can shed or re-route load immediately.
    """


class JournalError(PersistenceError):
    """Raised when a mutation journal cannot be used with an archive.

    The canonical case is a journal whose header names a different
    archive UUID than the archive being opened: replaying it would apply
    another index's mutations, so the load fails loudly instead.  (A
    journal matching the archive's *parent* UUID is not an error — it was
    superseded by the save that wrote the archive and is discarded.)

    Derives from :class:`PersistenceError`, so callers guarding load paths
    with ``except PersistenceError`` keep working.
    """
