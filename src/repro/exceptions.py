"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError` so that callers can catch library-specific failures
without also swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class NotFittedError(ReproError):
    """Raised when a model is used before :meth:`fit` has been called."""


class DimensionMismatchError(ReproError):
    """Raised when an input array has an unexpected dimensionality."""


class InvalidParameterError(ReproError, ValueError):
    """Raised when a constructor or method receives an invalid parameter.

    Also derives from :class:`ValueError` so callers that predate the
    library-wide error surface (``except ValueError``) keep working; new
    code should catch :class:`ReproError` or this class directly.
    """


class EmptyDatasetError(ReproError):
    """Raised when an operation requires a non-empty dataset."""


class PersistenceError(ReproError):
    """Raised when a saved index cannot be read or written.

    Covers missing/corrupt/truncated archives, wrong magic headers and
    unsupported format versions.
    """


class JournalError(PersistenceError):
    """Raised when a mutation journal cannot be used with an archive.

    The canonical case is a journal whose header names a different
    archive UUID than the archive being opened: replaying it would apply
    another index's mutations, so the load fails loudly instead.  (A
    journal matching the archive's *parent* UUID is not an error — it was
    superseded by the save that wrote the archive and is discarded.)

    Derives from :class:`PersistenceError`, so callers guarding load paths
    with ``except PersistenceError`` keep working.
    """
