"""Signed Random Projection (SRP) sketches.

SRP (Charikar, 2002) hashes a vector to a bit string by taking the signs of
its projections onto random directions; the Hamming distance between two
sketches is an unbiased estimator of the *angle* between the vectors.  The
paper's related-work section contrasts SRP with RaBitQ: SRP binarizes both
sides and only bounds the variance of an angle estimate, whereas RaBitQ
binarizes only the data side and bounds every individual inner-product
estimate.  This implementation exists to make that comparison measurable.
"""

from __future__ import annotations

import numpy as np

from repro.core.bitops import hamming_distance, pack_bits
from repro.exceptions import (
    DimensionMismatchError,
    EmptyDatasetError,
    InvalidParameterError,
    NotFittedError,
)
from repro.substrates.linalg import as_float_matrix, squared_norms
from repro.substrates.rng import RngLike, ensure_rng


class SignedRandomProjection:
    """SRP sketches with angle-based distance estimation.

    Parameters
    ----------
    n_bits:
        Number of random projections (= sketch length in bits).
    rng:
        Seed or generator for the projection directions.
    """

    def __init__(self, n_bits: int, *, rng: RngLike = None) -> None:
        if n_bits <= 0:
            raise InvalidParameterError("n_bits must be positive")
        self.n_bits = int(n_bits)
        self._rng = ensure_rng(rng)
        self._projections: np.ndarray | None = None
        self._packed: np.ndarray | None = None
        self._norms: np.ndarray | None = None
        self._dim: int | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._packed is not None

    @property
    def packed_sketches(self) -> np.ndarray:
        """Packed sketches of the fitted data."""
        if self._packed is None:
            raise NotFittedError("SignedRandomProjection must be fitted before use")
        return self._packed

    def fit(self, data: np.ndarray) -> "SignedRandomProjection":
        """Sample the projection directions and sketch ``data``."""
        mat = as_float_matrix(data, "data")
        if mat.shape[0] == 0:
            raise EmptyDatasetError("cannot fit SRP on an empty dataset")
        self._dim = mat.shape[1]
        self._projections = self._rng.standard_normal((self._dim, self.n_bits))
        self._packed = self.sketch(mat)
        self._norms = np.sqrt(squared_norms(mat))
        return self

    def sketch(self, data: np.ndarray) -> np.ndarray:
        """Return packed sign sketches of ``data``."""
        if self._projections is None:
            raise NotFittedError("SignedRandomProjection must be fitted before use")
        mat = as_float_matrix(data, "data")
        if mat.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"data has dimension {mat.shape[1]}, sketcher expects {self._dim}"
            )
        bits = (mat @ self._projections >= 0.0).astype(np.uint8)
        return pack_bits(bits)

    def estimate_angles(self, query: np.ndarray) -> np.ndarray:
        """Estimated angles (radians) between ``query`` and the fitted vectors.

        The collision probability of one SRP bit is ``1 - theta / pi``, so
        ``theta ≈ pi * hamming / n_bits``.
        """
        vec = np.asarray(query, dtype=np.float64).reshape(1, -1)
        query_sketch = self.sketch(vec)[0]
        hamming = hamming_distance(self.packed_sketches, query_sketch[None, :])
        return np.pi * hamming.astype(np.float64) / self.n_bits

    def estimate_distances(self, query: np.ndarray) -> np.ndarray:
        """Squared-distance estimates derived from the angle estimates.

        Uses ``||o - q||^2 = ||o||^2 + ||q||^2 - 2 ||o|| ||q|| cos(theta)``
        with the data norms stored at fit time and the query norm computed
        exactly — i.e. SRP is given the benefit of exact norms, and its error
        comes purely from the angle estimation, mirroring the comparison made
        in the paper's related-work discussion.
        """
        if self._norms is None:
            raise NotFittedError("SignedRandomProjection must be fitted before use")
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        angles = self.estimate_angles(vec)
        query_norm = float(np.linalg.norm(vec))
        cosines = np.cos(angles)
        return (
            self._norms**2
            + query_norm**2
            - 2.0 * self._norms * query_norm * cosines
        )

    def code_size_bits(self) -> int:
        """Size of one sketch in bits."""
        return self.n_bits


__all__ = ["SignedRandomProjection"]
