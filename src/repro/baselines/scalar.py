"""Per-dimension uniform scalar quantization (SQ8-style baseline).

Scalar quantization methods quantize each coordinate independently onto a
uniform grid (VA-file / SQ8 family, discussed in the paper's related work).
They use more moderate compression rates than PQ in exchange for simplicity
and accuracy; this implementation serves as an additional comparator and as
a building block for tests.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import (
    DimensionMismatchError,
    EmptyDatasetError,
    InvalidParameterError,
    NotFittedError,
)
from repro.substrates.linalg import as_float_matrix


class ScalarQuantizer:
    """Uniform per-dimension scalar quantizer.

    Parameters
    ----------
    bits:
        Bits per coordinate (8 reproduces the common SQ8 setting).
    """

    def __init__(self, bits: int = 8) -> None:
        if not 1 <= bits <= 16:
            raise InvalidParameterError("bits must lie in [1, 16]")
        self.bits = int(bits)
        self.levels = (1 << self.bits) - 1
        self._lower: np.ndarray | None = None
        self._step: np.ndarray | None = None
        self._codes: np.ndarray | None = None
        self._dim: int | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._lower is not None

    @property
    def codes(self) -> np.ndarray:
        """Quantized training data, shape ``(n_vectors, dim)``."""
        if self._codes is None:
            raise NotFittedError("ScalarQuantizer must be fitted before use")
        return self._codes

    def fit(self, data: np.ndarray) -> "ScalarQuantizer":
        """Learn the per-dimension value ranges from ``data`` and encode it."""
        mat = as_float_matrix(data, "data")
        if mat.shape[0] == 0:
            raise EmptyDatasetError("cannot fit ScalarQuantizer on an empty dataset")
        self._dim = mat.shape[1]
        self._lower = mat.min(axis=0)
        upper = mat.max(axis=0)
        step = (upper - self._lower) / self.levels
        step[step == 0.0] = 1.0
        self._step = step
        self._codes = self.encode(mat)
        return self

    def _check(self, data: np.ndarray) -> np.ndarray:
        mat = as_float_matrix(data, "data")
        if mat.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"data has dimension {mat.shape[1]}, quantizer expects {self._dim}"
            )
        return mat

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Quantize vectors onto the per-dimension grids."""
        if self._lower is None or self._step is None:
            raise NotFittedError("ScalarQuantizer must be fitted before use")
        mat = self._check(data)
        scaled = (mat - self._lower[None, :]) / self._step[None, :]
        return np.clip(np.round(scaled), 0, self.levels).astype(np.uint16)

    def decode(self, codes: np.ndarray | None = None) -> np.ndarray:
        """Reconstruct vectors from codes."""
        if self._lower is None or self._step is None:
            raise NotFittedError("ScalarQuantizer must be fitted before use")
        code_arr = self.codes if codes is None else np.asarray(codes)
        return code_arr.astype(np.float64) * self._step[None, :] + self._lower[None, :]

    def estimate_distances(
        self, query: np.ndarray, *, codes: np.ndarray | None = None
    ) -> np.ndarray:
        """Squared distances from ``query`` to the reconstructed vectors."""
        if self._dim is None:
            raise NotFittedError("ScalarQuantizer must be fitted before use")
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self._dim:
            raise DimensionMismatchError(
                f"query has dimension {vec.shape[0]}, quantizer expects {self._dim}"
            )
        reconstruction = self.decode(codes)
        diff = reconstruction - vec[None, :]
        return np.einsum("ij,ij->i", diff, diff)

    def code_size_bits(self) -> int:
        """Size of one quantization code in bits."""
        if self._dim is None:
            raise NotFittedError("ScalarQuantizer must be fitted before use")
        return self._dim * self.bits

    def quantization_error(self, data: np.ndarray) -> float:
        """Mean squared reconstruction error of encoding then decoding ``data``."""
        mat = self._check(data)
        reconstructed = self.decode(self.encode(mat))
        diff = mat - reconstructed
        return float(np.mean(np.einsum("ij,ij->i", diff, diff)))


__all__ = ["ScalarQuantizer"]
