"""LSQ-style additive quantization.

Additive quantization (AQ / LSQ) represents each vector as the *sum* of ``M``
codewords, one drawn from each of ``M`` full-dimensional codebooks, rather
than the concatenation of sub-codewords as PQ does.  Encoding is NP-hard;
LSQ approximates it with iterated conditional modes (ICM): codes are updated
one codebook at a time, holding the others fixed, for a few rounds.

This implementation follows the same structure (alternating codebook updates
via least squares and ICM encoding) at laptop scale.  As in the paper, its
index-phase cost is far higher than PQ's — which is exactly the property
Table 4 reports.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import (
    DimensionMismatchError,
    EmptyDatasetError,
    InvalidParameterError,
    NotFittedError,
)
from repro.substrates.kmeans import kmeans_fit
from repro.substrates.linalg import as_float_matrix
from repro.substrates.rng import RngLike, ensure_rng


class AdditiveQuantizer:
    """Additive (LSQ-style) quantizer with ICM encoding.

    Parameters
    ----------
    n_codebooks:
        Number of additive codebooks ``M``.
    code_bits:
        Bits per codebook index ``k`` (``2^k`` codewords per codebook).
    n_iterations:
        Alternations between codebook updates and re-encoding.
    icm_rounds:
        ICM sweeps per encoding call.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        n_codebooks: int,
        code_bits: int = 4,
        *,
        n_iterations: int = 3,
        icm_rounds: int = 2,
        rng: RngLike = None,
    ) -> None:
        if n_codebooks <= 0:
            raise InvalidParameterError("n_codebooks must be positive")
        if not 1 <= code_bits <= 12:
            raise InvalidParameterError("code_bits must lie in [1, 12]")
        if n_iterations < 1:
            raise InvalidParameterError("n_iterations must be at least 1")
        if icm_rounds < 1:
            raise InvalidParameterError("icm_rounds must be at least 1")
        self.n_codebooks = int(n_codebooks)
        self.code_bits = int(code_bits)
        self.n_codewords = 1 << self.code_bits
        self.n_iterations = int(n_iterations)
        self.icm_rounds = int(icm_rounds)
        self._rng = ensure_rng(rng)
        self._codebooks: np.ndarray | None = None
        self._codes: np.ndarray | None = None
        self._dim: int | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._codebooks is not None

    @property
    def codebooks(self) -> np.ndarray:
        """Codebooks of shape ``(n_codebooks, n_codewords, dim)``."""
        if self._codebooks is None:
            raise NotFittedError("AdditiveQuantizer must be fitted before use")
        return self._codebooks

    @property
    def codes(self) -> np.ndarray:
        """Codes of the fitted data, shape ``(n_vectors, n_codebooks)``."""
        if self._codes is None:
            raise NotFittedError("AdditiveQuantizer must be fitted before use")
        return self._codes

    def _initialize_codebooks(self, data: np.ndarray) -> np.ndarray:
        """Residual-KMeans initialization: codebook ``m`` clusters the residual
        left over by codebooks ``0..m-1`` (a standard RQ warm start)."""
        n_codewords = min(self.n_codewords, data.shape[0])
        codebooks = np.zeros(
            (self.n_codebooks, self.n_codewords, data.shape[1]), dtype=np.float64
        )
        residual = data.copy()
        for m in range(self.n_codebooks):
            result = kmeans_fit(residual, n_codewords, max_iter=10, rng=self._rng)
            codebooks[m, :n_codewords] = result.centroids
            residual = residual - result.centroids[result.assignments]
        return codebooks

    def _icm_encode(self, data: np.ndarray, codebooks: np.ndarray) -> np.ndarray:
        """Encode ``data`` with iterated conditional modes."""
        n_vectors = data.shape[0]
        codes = np.zeros((n_vectors, self.n_codebooks), dtype=np.uint16)
        # Start from a greedy residual assignment.
        residual = data.copy()
        for m in range(self.n_codebooks):
            dots = residual @ codebooks[m].T
            norms = 0.5 * np.einsum("ij,ij->i", codebooks[m], codebooks[m])
            codes[:, m] = np.argmax(dots - norms[None, :], axis=1)
            residual = residual - codebooks[m][codes[:, m]]

        # ICM sweeps: re-optimize one codebook at a time.
        approx = np.zeros_like(data)
        for m in range(self.n_codebooks):
            approx += codebooks[m][codes[:, m]]
        for _ in range(self.icm_rounds):
            for m in range(self.n_codebooks):
                partial = approx - codebooks[m][codes[:, m]]
                target = data - partial
                dots = target @ codebooks[m].T
                norms = 0.5 * np.einsum("ij,ij->i", codebooks[m], codebooks[m])
                new_codes = np.argmax(dots - norms[None, :], axis=1)
                approx = partial + codebooks[m][new_codes]
                codes[:, m] = new_codes
        return codes

    def _update_codebooks(
        self, data: np.ndarray, codes: np.ndarray, codebooks: np.ndarray
    ) -> np.ndarray:
        """Update each codeword to the least-squares optimum given the codes."""
        updated = codebooks.copy()
        approx = np.zeros_like(data)
        for m in range(self.n_codebooks):
            approx += codebooks[m][codes[:, m]]
        for m in range(self.n_codebooks):
            partial = approx - codebooks[m][codes[:, m]]
            target = data - partial
            for word in range(self.n_codewords):
                members = codes[:, m] == word
                if members.any():
                    updated[m, word] = target[members].mean(axis=0)
            approx = partial + updated[m][codes[:, m]]
            codebooks = codebooks.copy()
            codebooks[m] = updated[m]
        return updated

    def fit(self, data: np.ndarray) -> "AdditiveQuantizer":
        """Train the codebooks on ``data`` and encode it."""
        mat = as_float_matrix(data, "data")
        if mat.shape[0] == 0:
            raise EmptyDatasetError("cannot fit AdditiveQuantizer on an empty dataset")
        self._dim = mat.shape[1]
        codebooks = self._initialize_codebooks(mat)
        codes = self._icm_encode(mat, codebooks)
        for _ in range(self.n_iterations):
            codebooks = self._update_codebooks(mat, codes, codebooks)
            codes = self._icm_encode(mat, codebooks)
        self._codebooks = codebooks
        self._codes = codes
        return self

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode new vectors with ICM against the trained codebooks."""
        mat = as_float_matrix(data, "data")
        if mat.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"data has dimension {mat.shape[1]}, quantizer expects {self._dim}"
            )
        return self._icm_encode(mat, self.codebooks)

    def decode(self, codes: np.ndarray | None = None) -> np.ndarray:
        """Reconstruct vectors as sums of codewords."""
        codebooks = self.codebooks
        code_arr = self.codes if codes is None else np.asarray(codes)
        out = np.zeros((code_arr.shape[0], codebooks.shape[2]), dtype=np.float64)
        for m in range(self.n_codebooks):
            out += codebooks[m][code_arr[:, m]]
        return out

    def estimate_distances(
        self, query: np.ndarray, *, codes: np.ndarray | None = None
    ) -> np.ndarray:
        """Estimated squared distances using LUTs of query-to-codeword products.

        ``||q - sum_m c_m||^2 = ||q||^2 - 2 sum_m <q, c_m> + ||sum_m c_m||^2``;
        the cross-codeword norm term is pre-computed per encoded vector at
        fit/encode time via the reconstruction, and the query term uses ``M``
        look-up tables, mirroring how AQ/LSQ implementations operate.
        """
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self._dim:
            raise DimensionMismatchError(
                f"query has dimension {vec.shape[0]}, quantizer expects {self._dim}"
            )
        code_arr = self.codes if codes is None else np.asarray(codes)
        codebooks = self.codebooks
        luts = codebooks @ vec  # (n_codebooks, n_codewords)
        cross = np.zeros(code_arr.shape[0], dtype=np.float64)
        for m in range(self.n_codebooks):
            cross += luts[m][code_arr[:, m]]
        reconstruction = self.decode(code_arr)
        recon_norms = np.einsum("ij,ij->i", reconstruction, reconstruction)
        query_norm = float(vec @ vec)
        return query_norm - 2.0 * cross + recon_norms

    def code_size_bits(self) -> int:
        """Size of one quantization code in bits."""
        return self.n_codebooks * self.code_bits

    def quantization_error(self, data: np.ndarray) -> float:
        """Mean squared reconstruction error of encoding then decoding ``data``."""
        mat = as_float_matrix(data, "data")
        codes = self.encode(mat)
        reconstructed = self.decode(codes)
        diff = mat - reconstructed
        return float(np.mean(np.einsum("ij,ij->i", diff, diff)))


__all__ = ["AdditiveQuantizer"]
