"""Optimized Product Quantization (OPQ).

OPQ (Ge et al., 2013) learns an orthogonal rotation ``R`` jointly with the PQ
codebooks so that the rotated data is better aligned with the product
structure of the codebook.  Training alternates between

1. fitting / re-encoding a PQ on the rotated data, and
2. updating ``R`` by solving an orthogonal Procrustes problem between the
   original data and the PQ reconstruction.

This is the non-parametric OPQ variant.  At query time the query is rotated
with ``R`` and the standard PQ asymmetric distance computation is applied.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.pq import ProductQuantizer
from repro.exceptions import (
    DimensionMismatchError,
    EmptyDatasetError,
    InvalidParameterError,
    NotFittedError,
)
from repro.substrates.linalg import as_float_matrix
from repro.substrates.rng import RngLike, ensure_rng


class OptimizedProductQuantizer:
    """OPQ: a learned rotation followed by Product Quantization.

    Parameters
    ----------
    n_segments:
        Number of PQ sub-segments ``M``.
    code_bits:
        Bits per segment code ``k``.
    n_iterations:
        Number of rotation/codebook alternations.
    quantize_lut:
        Forwarded to the inner :class:`ProductQuantizer`.
    kmeans_iters:
        Lloyd iterations per sub-codebook per alternation.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        n_segments: int,
        code_bits: int = 8,
        *,
        n_iterations: int = 5,
        quantize_lut: bool = False,
        kmeans_iters: int = 10,
        rng: RngLike = None,
    ) -> None:
        if n_iterations < 1:
            raise InvalidParameterError("n_iterations must be at least 1")
        self.n_segments = int(n_segments)
        self.code_bits = int(code_bits)
        self.n_iterations = int(n_iterations)
        self.quantize_lut = bool(quantize_lut)
        self.kmeans_iters = int(kmeans_iters)
        self._rng = ensure_rng(rng)
        self._rotation: np.ndarray | None = None
        self._pq: ProductQuantizer | None = None
        self._dim: int | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._pq is not None

    @property
    def rotation(self) -> np.ndarray:
        """The learned orthogonal rotation matrix ``R`` of shape ``(D, D)``."""
        if self._rotation is None:
            raise NotFittedError("OptimizedProductQuantizer must be fitted before use")
        return self._rotation

    @property
    def pq(self) -> ProductQuantizer:
        """The inner Product Quantizer operating on rotated data."""
        if self._pq is None:
            raise NotFittedError("OptimizedProductQuantizer must be fitted before use")
        return self._pq

    @property
    def codes(self) -> np.ndarray:
        """Codes of the fitted data, shape ``(n_vectors, n_segments)``."""
        return self.pq.codes

    def fit(self, data: np.ndarray) -> "OptimizedProductQuantizer":
        """Learn the rotation and the PQ codebooks on ``data``."""
        mat = as_float_matrix(data, "data")
        if mat.shape[0] == 0:
            raise EmptyDatasetError("cannot fit OPQ on an empty dataset")
        if mat.shape[1] % self.n_segments != 0:
            raise DimensionMismatchError(
                f"dimension {mat.shape[1]} is not divisible by "
                f"n_segments={self.n_segments}"
            )
        self._dim = mat.shape[1]
        rotation = np.eye(self._dim)

        pq: ProductQuantizer | None = None
        for _ in range(self.n_iterations):
            rotated = mat @ rotation
            pq = ProductQuantizer(
                self.n_segments,
                self.code_bits,
                quantize_lut=self.quantize_lut,
                kmeans_iters=self.kmeans_iters,
                rng=self._rng,
            ).fit(rotated)
            reconstruction = pq.decode()
            # Orthogonal Procrustes: R = argmin ||X R - Y||_F with R orthogonal,
            # solved by the SVD of X^T Y.
            u_mat, _, vt_mat = np.linalg.svd(mat.T @ reconstruction)
            rotation = u_mat @ vt_mat

        # Final encoding with the last rotation.
        self._rotation = rotation
        self._pq = ProductQuantizer(
            self.n_segments,
            self.code_bits,
            quantize_lut=self.quantize_lut,
            kmeans_iters=self.kmeans_iters,
            rng=self._rng,
        ).fit(mat @ rotation)
        return self

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode vectors: rotate then PQ-encode."""
        mat = as_float_matrix(data, "data")
        if mat.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"data has dimension {mat.shape[1]}, quantizer expects {self._dim}"
            )
        return self.pq.encode(mat @ self.rotation)

    def decode(self, codes: np.ndarray | None = None) -> np.ndarray:
        """Reconstruct vectors in the original (un-rotated) space."""
        reconstructed = self.pq.decode(codes)
        return reconstructed @ self.rotation.T

    def estimate_distances(
        self, query: np.ndarray, *, codes: np.ndarray | None = None
    ) -> np.ndarray:
        """ADC distance estimates (rotation preserves Euclidean distances)."""
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self._dim:
            raise DimensionMismatchError(
                f"query has dimension {vec.shape[0]}, quantizer expects {self._dim}"
            )
        return self.pq.estimate_distances(vec @ self.rotation, codes=codes)

    def code_size_bits(self) -> int:
        """Size of one quantization code in bits."""
        return self.n_segments * self.code_bits

    def quantization_error(self, data: np.ndarray) -> float:
        """Mean squared reconstruction error of encoding then decoding ``data``."""
        mat = as_float_matrix(data, "data")
        codes = self.encode(mat)
        reconstructed = self.decode(codes)
        diff = mat - reconstructed
        return float(np.mean(np.einsum("ij,ij->i", diff, diff)))


__all__ = ["OptimizedProductQuantizer"]
