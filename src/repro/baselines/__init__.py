"""Baseline quantization methods compared against RaBitQ in the paper.

All baselines expose the same small interface so that the experiment harness
can swap them in and out:

* ``fit(data)``                 — train the codebooks on raw vectors,
* ``encode(data)``              — produce quantization codes,
* ``estimate_distances(query)`` — estimated squared distances to every
  encoded vector (asymmetric distance computation).

Implemented baselines:

* :class:`~repro.baselines.pq.ProductQuantizer` — PQ (Jegou et al., 2010),
  with both the ``k = 8`` RAM-LUT variant and the ``k = 4`` fast-scan-style
  variant.
* :class:`~repro.baselines.opq.OptimizedProductQuantizer` — OPQ (Ge et al.,
  2013), PQ preceded by a learned orthogonal rotation.
* :class:`~repro.baselines.lsq.AdditiveQuantizer` — an LSQ-style additive
  quantizer with ICM encoding (Martinez et al., 2016/2018).
* :class:`~repro.baselines.scalar.ScalarQuantizer` — per-dimension uniform
  scalar quantization (SQ8-style).
* :class:`~repro.baselines.srp.SignedRandomProjection` — sign-random-
  projection sketches for angular similarity (related work, Sec. 6).
"""

from repro.baselines.lsq import AdditiveQuantizer
from repro.baselines.opq import OptimizedProductQuantizer
from repro.baselines.pq import ProductQuantizer
from repro.baselines.scalar import ScalarQuantizer
from repro.baselines.srp import SignedRandomProjection

__all__ = [
    "ProductQuantizer",
    "OptimizedProductQuantizer",
    "AdditiveQuantizer",
    "ScalarQuantizer",
    "SignedRandomProjection",
]
