"""Product Quantization (PQ) with asymmetric distance computation.

PQ splits each ``D``-dimensional vector into ``M`` sub-segments, clusters
each sub-segment independently with KMeans into ``2^k`` centroids, and stores
the centroid index per sub-segment (``M`` small integers per vector).  At
query time the squared distances between the query's sub-segments and every
sub-centroid are pre-computed into ``M`` look-up tables; the estimated
distance of a data vector is the sum of ``M`` table lookups (asymmetric
distance computation, ADC).

Two operating points are supported, matching the paper's terminology:

* ``code_bits = 8`` — the classic ``PQx8`` setting (one byte per segment,
  LUTs in RAM),
* ``code_bits = 4`` — the ``PQx4fs`` setting used by the SIMD fast-scan
  implementation (16 centroids per segment); the optional 8-bit quantization
  of LUT entries performed by the hardware implementation can be enabled
  with ``quantize_lut=True`` to reproduce its extra error.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import (
    DimensionMismatchError,
    EmptyDatasetError,
    InvalidParameterError,
    NotFittedError,
)
from repro.substrates.kmeans import kmeans_fit
from repro.substrates.linalg import as_float_matrix, pairwise_squared_distances
from repro.substrates.rng import RngLike, ensure_rng


class ProductQuantizer:
    """Product Quantization with ADC distance estimation.

    Parameters
    ----------
    n_segments:
        Number of sub-segments ``M``.  Must divide the data dimensionality.
    code_bits:
        Bits per segment code ``k`` (the sub-codebook has ``2^k`` centroids).
    quantize_lut:
        Quantize LUT entries to ``uint8`` as the SIMD fast-scan layout does
        (only meaningful with ``code_bits = 4``); adds a small extra error.
    kmeans_iters:
        Lloyd iterations for each sub-codebook.
    rng:
        Seed or generator for KMeans initialization.
    """

    def __init__(
        self,
        n_segments: int,
        code_bits: int = 8,
        *,
        quantize_lut: bool = False,
        kmeans_iters: int = 20,
        rng: RngLike = None,
    ) -> None:
        if n_segments <= 0:
            raise InvalidParameterError("n_segments must be positive")
        if not 1 <= code_bits <= 16:
            raise InvalidParameterError("code_bits must lie in [1, 16]")
        self.n_segments = int(n_segments)
        self.code_bits = int(code_bits)
        self.n_centroids = 1 << self.code_bits
        self.quantize_lut = bool(quantize_lut)
        self.kmeans_iters = int(kmeans_iters)
        self._rng = ensure_rng(rng)
        self._codebooks: np.ndarray | None = None
        self._codes: np.ndarray | None = None
        self._dim: int | None = None

    # ------------------------------------------------------------------ #
    # Index phase
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._codebooks is not None

    @property
    def codebooks(self) -> np.ndarray:
        """Sub-codebooks, shape ``(n_segments, n_centroids, segment_dim)``."""
        if self._codebooks is None:
            raise NotFittedError("ProductQuantizer must be fitted before use")
        return self._codebooks

    @property
    def codes(self) -> np.ndarray:
        """Codes of the fitted data, shape ``(n_vectors, n_segments)``."""
        if self._codes is None:
            raise NotFittedError("ProductQuantizer must be fitted before use")
        return self._codes

    @property
    def segment_dim(self) -> int:
        """Dimensionality of each sub-segment."""
        if self._dim is None:
            raise NotFittedError("ProductQuantizer must be fitted before use")
        return self._dim // self.n_segments

    def _split(self, data: np.ndarray) -> np.ndarray:
        """Reshape ``(n, D)`` into ``(n, M, D/M)``."""
        return data.reshape(data.shape[0], self.n_segments, -1)

    def fit(self, data: np.ndarray) -> "ProductQuantizer":
        """Train the sub-codebooks on ``data`` and encode it."""
        mat = as_float_matrix(data, "data")
        if mat.shape[0] == 0:
            raise EmptyDatasetError("cannot fit PQ on an empty dataset")
        if mat.shape[1] % self.n_segments != 0:
            raise DimensionMismatchError(
                f"dimension {mat.shape[1]} is not divisible by "
                f"n_segments={self.n_segments}"
            )
        self._dim = mat.shape[1]
        segment_dim = self._dim // self.n_segments
        n_centroids = min(self.n_centroids, mat.shape[0])

        codebooks = np.zeros(
            (self.n_segments, self.n_centroids, segment_dim), dtype=np.float64
        )
        segments = self._split(mat)
        for m in range(self.n_segments):
            result = kmeans_fit(
                segments[:, m, :],
                n_centroids,
                max_iter=self.kmeans_iters,
                rng=self._rng,
            )
            codebooks[m, :n_centroids] = result.centroids
            if n_centroids < self.n_centroids:
                # Duplicate the last centroid so every index is valid.
                codebooks[m, n_centroids:] = result.centroids[-1]
        self._codebooks = codebooks
        self._codes = self.encode(mat)
        return self

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Map vectors to codes (nearest sub-centroid per segment)."""
        codebooks = self.codebooks
        mat = as_float_matrix(data, "data")
        if mat.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"data has dimension {mat.shape[1]}, quantizer expects {self._dim}"
            )
        segments = self._split(mat)
        codes = np.empty((mat.shape[0], self.n_segments), dtype=np.uint16)
        for m in range(self.n_segments):
            dists = pairwise_squared_distances(segments[:, m, :], codebooks[m])
            codes[:, m] = np.argmin(dists, axis=1)
        return codes

    def decode(self, codes: np.ndarray | None = None) -> np.ndarray:
        """Reconstruct (approximate) vectors from codes."""
        codebooks = self.codebooks
        code_arr = self.codes if codes is None else np.asarray(codes)
        segment_dim = self.segment_dim
        out = np.empty(
            (code_arr.shape[0], self.n_segments * segment_dim), dtype=np.float64
        )
        for m in range(self.n_segments):
            out[:, m * segment_dim : (m + 1) * segment_dim] = codebooks[m][
                code_arr[:, m]
            ]
        return out

    # ------------------------------------------------------------------ #
    # Query phase (asymmetric distance computation)
    # ------------------------------------------------------------------ #

    def build_luts(self, query: np.ndarray) -> np.ndarray:
        """Pre-compute per-segment squared-distance LUTs for ``query``.

        Returns an array of shape ``(n_segments, n_centroids)``.  When
        ``quantize_lut`` is enabled the entries are additionally passed
        through an 8-bit affine quantization (and mapped back to floats),
        reproducing the extra error of the SIMD fast-scan implementation.
        """
        codebooks = self.codebooks
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self._dim:
            raise DimensionMismatchError(
                f"query has dimension {vec.shape[0]}, quantizer expects {self._dim}"
            )
        segment_dim = self.segment_dim
        luts = np.empty((self.n_segments, self.n_centroids), dtype=np.float64)
        for m in range(self.n_segments):
            sub_query = vec[m * segment_dim : (m + 1) * segment_dim]
            diff = codebooks[m] - sub_query[None, :]
            luts[m] = np.einsum("ij,ij->i", diff, diff)
        if self.quantize_lut:
            low = luts.min()
            high = luts.max()
            if high > low:
                scale = (high - low) / 255.0
                luts = np.round((luts - low) / scale) * scale + low
        return luts

    def estimate_distances(
        self, query: np.ndarray, *, codes: np.ndarray | None = None
    ) -> np.ndarray:
        """ADC distance estimates from ``query`` to the encoded vectors."""
        luts = self.build_luts(query)
        code_arr = self.codes if codes is None else np.asarray(codes)
        segment_index = np.arange(self.n_segments)[None, :]
        values = luts[segment_index, code_arr.astype(np.intp)]
        return values.sum(axis=1)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def code_size_bits(self) -> int:
        """Size of one quantization code in bits."""
        return self.n_segments * self.code_bits

    def quantization_error(self, data: np.ndarray) -> float:
        """Mean squared reconstruction error of encoding then decoding ``data``."""
        mat = as_float_matrix(data, "data")
        codes = self.encode(mat)
        reconstructed = self.decode(codes)
        diff = mat - reconstructed
        return float(np.mean(np.einsum("ij,ij->i", diff, diff)))


__all__ = ["ProductQuantizer"]
