"""Deadline-aware probe-budget control for the online serving engine.

Production deadlines are met by doing *less work*, not by hoping the queue
drains: when the time remaining until a request's deadline is smaller than
what the requested ``nprobe`` is expected to cost, the only lever that
needs no index surgery is the per-call ``nprobe=`` override both searcher
entry points already accept.  :class:`BudgetController` owns that decision.

The controller keeps a single-scalar service-time model — an exponentially
weighted moving average of the observed *seconds per (query x probe)* of
the engine's executed micro-batches.  Probed-cluster scans dominate the
serving cost and scale ~linearly in ``nprobe`` (one fused GEMM slice per
probed cluster), so ``seconds_per_probe * nprobe`` is a serviceable
first-order latency forecast; the EWMA adapts it to the current batch-fill
regime and host load without any offline calibration.

Determinism contract: :meth:`effective_nprobe` is a pure function of the
requested budget, the remaining time and the controller's model state, and
:meth:`observe` ignores non-positive durations (a frozen test clock
observes zero elapsed time).  Under a frozen clock the model state
therefore never drifts and every degradation decision is exactly
reproducible — pinned in ``tests/test_serving.py``.

Thread safety: the controller is written (``observe``) and read
(``effective_nprobe``) only by the serving engine's single worker thread;
it needs and takes no locks.
"""

from __future__ import annotations

from repro.exceptions import InvalidParameterError

__all__ = ["BudgetController"]


class BudgetController:
    """Degrade per-request ``nprobe`` when the deadline demands it.

    Parameters
    ----------
    min_nprobe:
        Floor on the degraded probe budget: a request is never degraded
        below this many probed clusters (quality floor), though it also
        never *gains* probes — the effective budget is capped by what the
        caller requested.
    alpha:
        EWMA weight of the newest service-time observation, in ``(0, 1]``.
    safety:
        Multiplier on the forecast cost (``> 0``).  Values above 1 degrade
        earlier, trading recall for deadline-miss rate.
    initial_seconds_per_probe:
        Optional model seed.  Until the first observation the controller
        has no forecast and leaves every request undegraded (``None``
        model); seeding makes the first decisions deterministic, which the
        frozen-clock tests rely on.
    """

    def __init__(
        self,
        *,
        min_nprobe: int = 1,
        alpha: float = 0.25,
        safety: float = 1.0,
        initial_seconds_per_probe: float | None = None,
    ) -> None:
        if min_nprobe < 1:
            raise InvalidParameterError("min_nprobe must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise InvalidParameterError("alpha must lie in (0, 1]")
        if safety <= 0.0:
            raise InvalidParameterError("safety must be positive")
        if (
            initial_seconds_per_probe is not None
            and initial_seconds_per_probe <= 0.0
        ):
            raise InvalidParameterError(
                "initial_seconds_per_probe must be positive"
            )
        self.min_nprobe = int(min_nprobe)
        self.alpha = float(alpha)
        self.safety = float(safety)
        self._seconds_per_probe: float | None = (
            float(initial_seconds_per_probe)
            if initial_seconds_per_probe is not None
            else None
        )

    @property
    def seconds_per_probe(self) -> float | None:
        """Current EWMA of seconds per (query x probe); ``None`` untrained."""
        return self._seconds_per_probe

    def observe(self, nprobe: int, n_queries: int, seconds: float) -> None:
        """Fold one executed micro-batch into the service-time model.

        ``seconds`` is the wall-clock duration of a ``search_batch`` call
        that answered ``n_queries`` requests at ``nprobe`` probes each.
        Non-positive durations are ignored (sub-resolution timings and
        frozen test clocks carry no information, and folding zeros in
        would drive the forecast — and with it every degraded budget — to
        zero).
        """
        if nprobe < 1 or n_queries < 1:
            raise InvalidParameterError(
                "observe requires nprobe >= 1 and n_queries >= 1"
            )
        if seconds <= 0.0:
            return
        sample = float(seconds) / (float(n_queries) * float(nprobe))
        if self._seconds_per_probe is None:
            self._seconds_per_probe = sample
        else:
            self._seconds_per_probe = (
                self.alpha * sample
                + (1.0 - self.alpha) * self._seconds_per_probe
            )

    def effective_nprobe(
        self, requested: int, remaining_seconds: float | None
    ) -> int:
        """The probe budget to actually spend on one request.

        Pure in ``(requested, remaining_seconds, model state)``.  With no
        deadline (``None``) or no trained model the request is undegraded;
        with the deadline already blown the floor budget is returned (the
        response is late either way — spend as little as allowed on it);
        otherwise the budget is the largest ``nprobe`` whose forecast cost
        ``nprobe * seconds_per_probe * safety`` fits in the remaining
        time, clamped to ``[min(min_nprobe, requested), requested]``.
        """
        if requested < 1:
            raise InvalidParameterError("requested nprobe must be >= 1")
        floor = min(self.min_nprobe, int(requested))
        if remaining_seconds is None:
            return int(requested)
        if remaining_seconds <= 0.0:
            return floor
        model = self._seconds_per_probe
        if model is None:
            return int(requested)
        affordable = int(float(remaining_seconds) / (model * self.safety))
        return max(floor, min(int(requested), affordable))
