"""Online serving front end: request coalescing over the batch engine.

* :mod:`repro.serving.engine` — :class:`ServingEngine`, a thread-safe
  queue + worker that coalesces concurrent ``submit`` calls into
  ``search_batch`` micro-batches, with bounded-queue admission control
  and an execution log for bit-identity replay.
* :mod:`repro.serving.budget` — :class:`BudgetController`, deadline-aware
  per-request ``nprobe`` degradation from an EWMA service-time model.

See the "Online serving" section of ``benchmarks/README.md`` for the
knob semantics and the single-CPU measurement caveats.
"""

from repro.serving.budget import BudgetController
from repro.serving.engine import (
    ExecutedRequest,
    PendingRequest,
    ServingEngine,
    execution_log_matches,
)

__all__ = [
    "ServingEngine",
    "PendingRequest",
    "ExecutedRequest",
    "BudgetController",
    "execution_log_matches",
]
