"""Request coalescing engine: concurrent ``submit`` calls → micro-batches.

Production ANN traffic arrives as concurrent *single* queries, while this
repo's efficiency win lives in ``search_batch`` (the fused per-cluster GEMM
engine does measurably less work per query than the sequential path — see
the ``serving`` section of ``benchmarks/run_bench.py``).
:class:`ServingEngine` converts one into the other: callers submit single
queries from any thread, a dedicated worker thread groups compatible
requests (same ``k`` and requested ``nprobe`` against the same searcher)
into micro-batches bounded by ``max_batch`` and a ``max_delay_us``
collection window, executes each micro-batch with one ``search_batch``
call, and scatters the per-request :class:`SearchResult`s back to the
waiting callers.

Correctness story
-----------------
Batch execution is *bit-identical* to sequential execution in this repo
(``search_batch`` ≡ ``[search(q) ...]`` from the same stream state), but
with randomized rounding enabled the results do depend on the **order** in
which queries consume each cluster's rounding stream.  The engine
therefore keeps an optional execution log (``record_requests=True``):
every answered request is appended in the exact order it was executed,
with the query, its parameters and the returned ids/distances.  Replaying
that order through plain ``search`` calls on a *twin* searcher loaded from
the same archive must reproduce every response bit-for-bit —
:func:`execution_log_matches` does exactly that, and both the test suite
and the benchmark harness hard-gate on it.

Admission control and deadlines
-------------------------------
The request queue is bounded (``max_queue_depth``); a submit against a
full queue fast-fails with :class:`AdmissionRejectedError` *before* the
request consumes any search work, as does a request whose relative
``deadline`` is already non-positive.  Admitted requests may still be
*degraded*: when a :class:`~repro.serving.budget.BudgetController` is
attached, the worker computes each request's remaining time at dispatch
and lowers its effective ``nprobe`` so the forecast service cost fits the
deadline (the per-call ``nprobe=`` override of ``search``/``search_batch``
makes this possible without touching the searcher).  Requests whose
effective budgets diverge are split into per-budget sub-batches, executed
in first-arrival order.

Clocking
--------
All timestamps come from the injectable ``clock`` callable (default
:func:`time.monotonic`): enqueue times, deadline conversion, service
timing and latency samples.  Tests freeze the clock to pin deadline
degradation decisions exactly; a frozen clock requires ``max_delay_us=0``
(the collection window can only expire by the clock advancing).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import (
    AdmissionRejectedError,
    InvalidParameterError,
    ServingError,
)
from repro.metrics.timing import LatencyRecorder
from repro.serving.budget import BudgetController

__all__ = [
    "ServingEngine",
    "PendingRequest",
    "ExecutedRequest",
    "execution_log_matches",
]


@dataclass(frozen=True)
class ExecutedRequest:
    """One answered request, in the order the engine executed it.

    ``nprobe_effective`` is the probe budget actually spent (equal to
    ``nprobe_requested`` unless the budget controller degraded it); ``ids``
    and ``distances`` are the arrays returned to the caller.  The sequence
    of these records *is* the engine's execution order — replaying them
    through sequential ``search`` calls on a twin searcher must reproduce
    ``ids``/``distances`` exactly (see :func:`execution_log_matches`).
    """

    query: np.ndarray
    k: int
    nprobe_requested: int
    nprobe_effective: int
    ids: np.ndarray
    distances: np.ndarray


def execution_log_matches(
    searcher, log: Sequence[ExecutedRequest]
) -> list[int]:
    """Replay an execution log sequentially; return indices that mismatch.

    ``searcher`` must be a *twin* of the engine's searcher with identical
    stream state — in practice a fresh ``load_searcher`` of the same
    archive the engine's searcher was loaded from (randomized-rounding
    streams are consumed in execution order, so replay requires starting
    from the same state, not sharing the live instance).  An empty return
    value is the coalescing-equivalence guarantee: every coalesced
    response is bit-identical to the sequential ``search`` answer.
    """
    mismatched: list[int] = []
    for i, entry in enumerate(log):
        expected = searcher.search(
            entry.query, entry.k, nprobe=entry.nprobe_effective
        )
        if not (
            np.array_equal(expected.ids, entry.ids)
            and np.array_equal(expected.distances, entry.distances)
        ):
            mismatched.append(i)
    return mismatched


class PendingRequest:
    """Handle returned by :meth:`ServingEngine.submit_async`.

    ``result()`` blocks until the worker answers (or fails) the request.
    Instances are created by the engine only.
    """

    __slots__ = (
        "query",
        "k",
        "nprobe",
        "nprobe_effective",
        "deadline_abs",
        "enqueue_t",
        "_event",
        "_result",
        "_error",
    )

    def __init__(
        self,
        query: np.ndarray,
        k: int,
        nprobe: int,
        deadline_abs: float | None,
        enqueue_t: float,
    ) -> None:
        self.query = query
        self.k = k
        self.nprobe = nprobe
        #: Probe budget actually spent; set by the worker at dispatch.
        self.nprobe_effective: int | None = None
        self.deadline_abs = deadline_abs
        self.enqueue_t = enqueue_t
        self._event = threading.Event()
        self._result = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        """Whether the request has been answered (or failed)."""
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        """Block until answered; return the :class:`SearchResult`.

        Raises the worker-side error if execution failed, or
        :class:`ServingError` if ``timeout`` elapses first.
        """
        if not self._event.wait(timeout):
            raise ServingError(
                f"request not answered within {timeout!r} seconds"
            )
        if self._error is not None:
            raise self._error
        return self._result


class ServingEngine:
    """Thread-safe coalescing front end over one searcher.

    Parameters
    ----------
    searcher:
        A fitted :class:`~repro.index.searcher.IVFQuantizedSearcher` or
        :class:`~repro.index.sharded.ShardedSearcher`.  The engine owns a
        reference, not the lifecycle — closing the engine does not close
        the searcher.
    max_batch:
        Largest micro-batch dispatched in one ``search_batch`` call.
    max_delay_us:
        Collection window in microseconds: once a request heads the queue,
        the worker waits at most this long for compatible requests to
        coalesce before dispatching a partial batch.  ``0`` dispatches
        whatever is queued immediately (required under a frozen clock).
    max_queue_depth:
        Admission bound on *queued* (not yet dispatched) requests; submits
        beyond it raise :class:`AdmissionRejectedError`.
    budget:
        Optional :class:`~repro.serving.budget.BudgetController` enabling
        deadline-aware ``nprobe`` degradation.  The engine feeds it
        service-time observations from every executed micro-batch.
    clock:
        Monotonic time source (seconds).  Injectable for deterministic
        tests; defaults to :func:`time.monotonic`.
    record_requests:
        Keep the full execution log (one :class:`ExecutedRequest` per
        answered request, in execution order) for equivalence replay.
        Off by default — the log holds every query and result.
    """

    def __init__(
        self,
        searcher,
        *,
        max_batch: int = 32,
        max_delay_us: int = 2000,
        max_queue_depth: int = 1024,
        budget: BudgetController | None = None,
        clock: Callable[[], float] | None = None,
        record_requests: bool = False,
    ) -> None:
        if max_batch < 1:
            raise InvalidParameterError("max_batch must be >= 1")
        if max_delay_us < 0:
            raise InvalidParameterError("max_delay_us must be >= 0")
        if max_queue_depth < 1:
            raise InvalidParameterError("max_queue_depth must be >= 1")
        dim = getattr(searcher, "dim", None)
        if dim is None:
            raise InvalidParameterError(
                "searcher must expose a `dim` property"
            )
        self._searcher = searcher
        self._dim = int(dim)
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_us) * 1e-6
        self.max_queue_depth = int(max_queue_depth)
        self._budget = budget
        self._clock = clock if clock is not None else time.monotonic
        self._record = bool(record_requests)

        self._cv = threading.Condition()
        self._queue: list[PendingRequest] = []
        self._executing = 0
        self._closed = False

        self._latency = LatencyRecorder()
        self._log: list[ExecutedRequest] = []
        self._n_submitted = 0
        self._n_completed = 0
        self._n_failed = 0
        self._n_rejected_queue = 0
        self._n_rejected_deadline = 0
        self._n_batches = 0
        self._n_batched = 0
        self._max_fill = 0
        self._n_degraded = 0
        self._n_deadline_miss = 0

        self._worker = threading.Thread(
            target=self._worker_loop, name="repro-serving-worker", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # submission side (any thread)
    # ------------------------------------------------------------------

    @property
    def searcher(self):
        """The searcher this engine dispatches to."""
        return self._searcher

    @property
    def latency(self) -> LatencyRecorder:
        """Enqueue-to-answer latency samples of completed requests."""
        return self._latency

    @property
    def budget(self) -> BudgetController | None:
        """The attached budget controller, if any."""
        return self._budget

    def execution_log(self) -> tuple[ExecutedRequest, ...]:
        """Snapshot of the execution log (``record_requests=True`` only)."""
        with self._cv:
            return tuple(self._log)

    def submit_async(
        self,
        query: np.ndarray,
        k: int,
        *,
        nprobe: int = 8,
        deadline: float | None = None,
    ) -> PendingRequest:
        """Enqueue one query; return immediately with a handle.

        ``deadline`` is *relative*: seconds from now within which the
        caller wants the answer.  It is advisory for batching (the budget
        controller degrades ``nprobe`` to chase it) except at admission,
        where a non-positive deadline fast-fails.
        """
        if k < 1:
            raise InvalidParameterError("k must be positive")
        if nprobe < 1:
            raise InvalidParameterError("nprobe must be >= 1")
        vec = np.asarray(query, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self._dim:
            raise InvalidParameterError(
                f"query has {vec.shape[0]} dimensions, searcher expects "
                f"{self._dim}"
            )
        if deadline is not None:
            deadline = float(deadline)
            if not np.isfinite(deadline):
                raise InvalidParameterError("deadline must be finite")
        with self._cv:
            if self._closed:
                raise ServingError("submit on a closed ServingEngine")
            if deadline is not None and deadline <= 0.0:
                self._n_rejected_deadline += 1
                raise AdmissionRejectedError(
                    f"deadline of {deadline!r}s is already expired at submit"
                )
            if len(self._queue) >= self.max_queue_depth:
                self._n_rejected_queue += 1
                raise AdmissionRejectedError(
                    f"request queue is full ({self.max_queue_depth} pending)"
                )
            now = self._clock()
            request = PendingRequest(
                query=vec,
                k=int(k),
                nprobe=int(nprobe),
                deadline_abs=None if deadline is None else now + deadline,
                enqueue_t=now,
            )
            self._queue.append(request)
            self._n_submitted += 1
            self._cv.notify_all()
        return request

    def submit(
        self,
        query: np.ndarray,
        k: int,
        *,
        nprobe: int = 8,
        deadline: float | None = None,
        timeout: float | None = None,
    ):
        """Blocking submit: enqueue, wait, return the :class:`SearchResult`."""
        pending = self.submit_async(query, k, nprobe=nprobe, deadline=deadline)
        return pending.result(timeout=timeout)

    def drain(self, timeout: float | None = None) -> None:
        """Block until every admitted request has been answered."""
        deadline_t = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while self._queue or self._executing:
                remaining = None
                if deadline_t is not None:
                    remaining = deadline_t - time.monotonic()
                    if remaining <= 0.0:
                        raise ServingError(
                            f"drain did not complete within {timeout!r} seconds"
                        )
                self._cv.wait(timeout=remaining)

    def close(self) -> None:
        """Stop accepting requests, answer everything queued, join the worker.

        Idempotent.  Queued requests are *completed*, not cancelled; only
        new submits fail (with :class:`ServingError`) after close.
        """
        with self._cv:
            if self._closed:
                self._cv.notify_all()
            self._closed = True
            self._cv.notify_all()
        if self._worker.is_alive():
            self._worker.join()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close()

    def stats(self) -> dict:
        """Counters snapshot: admission, batching and deadline behaviour."""
        with self._cv:
            completed = self._n_completed
            rejected = self._n_rejected_queue + self._n_rejected_deadline
            return {
                "submitted": self._n_submitted,
                "completed": completed,
                "failed": self._n_failed,
                "rejected": rejected,
                "rejected_queue_full": self._n_rejected_queue,
                "rejected_deadline": self._n_rejected_deadline,
                "batches": self._n_batches,
                "batched_requests": self._n_batched,
                "mean_batch_fill": (
                    self._n_batched / self._n_batches if self._n_batches else 0.0
                ),
                "max_batch_fill": self._max_fill,
                "degraded_requests": self._n_degraded,
                "deadline_misses": self._n_deadline_miss,
                "deadline_miss_rate": (
                    self._n_deadline_miss / completed if completed else 0.0
                ),
            }

    # ------------------------------------------------------------------
    # worker side (single thread)
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            self._execute(batch)

    def _collect_batch(self) -> list[PendingRequest] | None:
        """Pull the next micro-batch off the queue (or ``None`` to exit).

        The head request anchors the batch: the worker holds the
        collection window open (``max_delay_s`` past the head's enqueue
        time) while fewer than ``max_batch`` requests are queued, then
        extracts up to ``max_batch`` requests sharing the head's
        ``(k, nprobe)`` compatibility key, in FIFO order.  Incompatible
        requests keep their queue positions for a later batch.
        """
        with self._cv:
            while not self._queue and not self._closed:
                self._cv.wait()
            if not self._queue:
                return None  # closed and fully drained
            head = self._queue[0]
            if self.max_delay_s > 0.0:
                window_end = head.enqueue_t + self.max_delay_s
                while (
                    len(self._queue) < self.max_batch
                    and not self._closed
                    and self._clock() < window_end
                ):
                    # The wait timeout is real time; the loop condition is
                    # engine-clock time.  They agree for the default clock,
                    # and a frozen test clock must set max_delay_us=0 (the
                    # window would otherwise never expire).
                    self._cv.wait(timeout=max(window_end - self._clock(), 1e-4))
            key = (head.k, head.nprobe)
            batch: list[PendingRequest] = []
            rest: list[PendingRequest] = []
            for request in self._queue:
                if len(batch) < self.max_batch and (request.k, request.nprobe) == key:
                    batch.append(request)
                else:
                    rest.append(request)
            self._queue = rest
            self._executing += len(batch)
            self._cv.notify_all()  # queue space freed; drain() re-checks
            return batch

    def _execute(self, batch: list[PendingRequest]) -> None:
        """Dispatch one micro-batch, scattering results to the callers."""
        now = self._clock()
        # Per-request effective nprobe, then order-preserving partition
        # into sub-batches (one search_batch call per distinct budget).
        groups: dict[int, list[PendingRequest]] = {}
        order: list[int] = []
        for request in batch:
            if self._budget is None:
                effective = request.nprobe
            else:
                remaining = (
                    None
                    if request.deadline_abs is None
                    else request.deadline_abs - now
                )
                effective = self._budget.effective_nprobe(
                    request.nprobe, remaining
                )
            request.nprobe_effective = effective
            if effective not in groups:
                groups[effective] = []
                order.append(effective)
            groups[effective].append(request)

        with self._cv:
            self._n_batches += 1
            self._n_batched += len(batch)
            self._max_fill = max(self._max_fill, len(batch))
            self._n_degraded += sum(
                1 for r in batch if r.nprobe_effective != r.nprobe
            )

        for effective in order:
            requests = groups[effective]
            queries = np.stack([r.query for r in requests])
            t0 = self._clock()
            try:
                results = self._searcher.search_batch(
                    queries, requests[0].k, nprobe=effective
                )
            except BaseException as exc:  # surfaced to the waiting callers
                error = ServingError(
                    f"search_batch failed inside the serving worker: {exc!r}"
                )
                error.__cause__ = exc
                for request in requests:
                    self._finish(request, error=error)
                continue
            t1 = self._clock()
            if self._budget is not None:
                self._budget.observe(effective, len(requests), t1 - t0)
            for request, result in zip(requests, results):
                if self._record:
                    with self._cv:
                        self._log.append(
                            ExecutedRequest(
                                query=request.query,
                                k=request.k,
                                nprobe_requested=request.nprobe,
                                nprobe_effective=effective,
                                ids=result.ids,
                                distances=result.distances,
                            )
                        )
                self._finish(request, result=result, finished_at=t1)

    def _finish(
        self,
        request: PendingRequest,
        *,
        result=None,
        error: BaseException | None = None,
        finished_at: float | None = None,
    ) -> None:
        done_t = finished_at if finished_at is not None else self._clock()
        with self._cv:
            self._executing -= 1
            if error is not None:
                self._n_failed += 1
            else:
                self._n_completed += 1
                self._latency.record(max(done_t - request.enqueue_t, 0.0))
                if (
                    request.deadline_abs is not None
                    and done_t > request.deadline_abs
                ):
                    self._n_deadline_miss += 1
            self._cv.notify_all()
        request._result = result
        request._error = error
        request._event.set()
