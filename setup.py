"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works in minimal offline environments that lack the
``wheel`` package required by the PEP 660 editable-install path.
"""

from setuptools import setup

setup()
